"""The Monte-Carlo simulation study (paper §6, Figures 1–3).

For every cluster count the study generates ``iterations`` independent random
grids (Table 2 parameter ranges), schedules a 1 MB broadcast with every
heuristic, and records the makespans.  The reported quantity is the average
completion time per heuristic and cluster count — the y-axis of Figures 1, 2
and 3 — together with enough raw material (per-iteration minima and hit
counts) for the Figure 4 hit-rate analysis to reuse the same runs.

The driver is batched: iterations are processed in chunks whose per-grid cost
matrices are built once (in the shared :class:`~repro.core.costs.GridCostCache`)
and stacked into :class:`~repro.core.batch.BatchedGridCosts`, so each
heuristic schedules a whole chunk of grids per NumPy call instead of one grid
per Python loop.  Heuristics without a batched kernel transparently fall back
to the per-grid engine on the same shared caches.  Iterations can additionally
be fanned out over the persistent runtime pool
(:mod:`repro.runtime.pool`); by default each worker regenerates its chunk's
grids from shipped seeds, while ``transport="auto"|"shm"|"pickle"`` switches
to the pipelined stack-shipping driver — the parent generates grids and
builds the ``(K, n, n)`` cost stacks, ships them zero-copy through
:mod:`repro.runtime.transport`, and keeps building the next chunk while the
workers schedule the previous one.  Every (cluster count, iteration) pair
keeps its own deterministic child seed, so the results are bit-identical
regardless of batching, chunking, driver, transport or worker count.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.batch import BatchedGridCosts, batched_makespans, has_batched_kernel
from repro.core.costs import GridCostCache
from repro.core.registry import instantiate
from repro.experiments.config import SimulationStudyConfig
from repro.runtime.chunking import (
    CostModel,
    choose_executor,
    cost_model_key,
    load_cost_model,
    save_cost_models,
)
from repro.runtime.pool import engage_remote_lane, get_pool
from repro.runtime.transport import ArrayShipment
from repro.topology.generators import RandomGridGenerator
from repro.utils.rng import RandomStream
from repro.utils.workers import resolve_workers

#: Upper bound on the number of stacked matrix *elements* per batch chunk;
#: keeps the (K, n, n) stacks of a 10 000-iteration study within a few dozen
#: megabytes regardless of the cluster count.
MAX_BATCH_ELEMENTS = 2_000_000

#: Environment variable consulted for the default worker count (the shared
#: ``REPRO_WORKERS`` is the fallback; see
#: :func:`repro.utils.workers.resolve_workers`).
WORKERS_ENV_VAR = "REPRO_MC_WORKERS"

#: Two schedules within this relative tolerance of each other are considered
#: equally good when computing hits against the per-iteration global minimum.
HIT_RELATIVE_TOLERANCE = 1e-9

#: The pre-shaping shared cost-cache record; readers of the shaped
#: ``pipeline/montecarlo/...`` keys fall back to it so cache files written
#: before shaped keys existed still seed the model.
_LEGACY_COST_KEY = "pipeline"


@dataclass
class SimulationStudyResult:
    """Results of one Monte-Carlo study.

    Attributes
    ----------
    config:
        The configuration that produced the result.
    heuristic_names:
        Display names, in the order of ``config.heuristics``.
    cluster_counts:
        The swept cluster counts.
    makespans:
        Array of shape ``(len(cluster_counts), len(heuristics), iterations)``
        holding every observed makespan in seconds.
    """

    config: SimulationStudyConfig
    heuristic_names: list[str]
    cluster_counts: list[int]
    makespans: np.ndarray

    # -- derived statistics -----------------------------------------------------------

    def mean_completion_times(self) -> np.ndarray:
        """Mean makespan per (cluster count, heuristic) — the paper's curves."""
        return self.makespans.mean(axis=2)

    def std_completion_times(self) -> np.ndarray:
        """Standard deviation of the makespan per (cluster count, heuristic)."""
        return self.makespans.std(axis=2)

    def global_minima(self) -> np.ndarray:
        """Per-iteration global minimum over the evaluated heuristics.

        Shape ``(len(cluster_counts), iterations)``.  This is the reference
        the paper calls the "global minimum" when the true optimum is too
        expensive to compute.
        """
        return self.makespans.min(axis=1)

    def hit_counts(self) -> np.ndarray:
        """Number of iterations where each heuristic matches the global minimum.

        Shape ``(len(cluster_counts), len(heuristics))`` — the quantity
        plotted in Figure 4 (out of ``iterations``).
        """
        minima = self.global_minima()[:, None, :]
        tolerance = HIT_RELATIVE_TOLERANCE * np.maximum(minima, 1e-300)
        hits = self.makespans <= minima + tolerance
        return hits.sum(axis=2)

    def hit_rates(self) -> np.ndarray:
        """Hit counts normalised by the number of iterations."""
        return self.hit_counts() / self.config.iterations

    def series(self, heuristic_name: str) -> list[float]:
        """The mean-completion-time series of one heuristic (by display name)."""
        try:
            index = self.heuristic_names.index(heuristic_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown heuristic {heuristic_name!r}; available: {self.heuristic_names}"
            ) from exc
        return self.mean_completion_times()[:, index].tolist()

    def as_table(self) -> list[dict[str, float]]:
        """One dict per cluster count mapping heuristic names to mean times."""
        means = self.mean_completion_times()
        rows: list[dict[str, float]] = []
        for row_index, count in enumerate(self.cluster_counts):
            row: dict[str, float] = {"clusters": float(count)}
            for column_index, name in enumerate(self.heuristic_names):
                row[name] = float(means[row_index, column_index])
            rows.append(row)
        return rows


def _chunk_size(num_clusters: int, iterations: int, worker_count: int) -> int:
    """Iterations per batch chunk, sized from per-iteration *cost*.

    An iteration's cost scales with ``num_clusters**2`` (its stacked-matrix
    cells), so the memory bound doubles as a cost bound: chunks of a large
    grid carry fewer iterations than chunks of a small one.  When a worker
    pool is in play the chunk additionally shrinks so each worker gets
    several chunks per cluster count (:data:`~repro.runtime.chunking.CHUNKS_PER_WORKER`)
    — otherwise a single-cluster-count study would collapse into one task
    and run serially regardless of ``workers``.  Chunking never affects
    results (each iteration owns its seed).
    """
    from repro.runtime.chunking import CHUNKS_PER_WORKER

    chunk = max(1, MAX_BATCH_ELEMENTS // max(1, num_clusters * num_clusters))
    if worker_count > 1:
        per_worker = -(-iterations // (worker_count * CHUNKS_PER_WORKER))
        chunk = min(chunk, max(1, per_worker))
    return chunk


def _evaluate_chunk(
    heuristic_keys: Sequence[str],
    num_clusters: int,
    seeds: Sequence[int],
    message_size: float,
    root: int,
    ranges,
) -> np.ndarray:
    """Makespans of every heuristic on one chunk of generated grids.

    Returns an array of shape ``(len(heuristic_keys), len(seeds))``.  The
    per-grid cost matrices are built once, shared by the batched kernels and
    by any per-grid fallback heuristic.
    """
    heuristics = instantiate(heuristic_keys)
    generator = RandomGridGenerator(ranges)
    grids = [
        generator.generate(num_clusters, RandomStream(seed=seed)) for seed in seeds
    ]
    caches = [GridCostCache.for_grid(grid, message_size) for grid in grids]
    batched: BatchedGridCosts | None = None  # stacked on first kernel user
    out = np.empty((len(heuristics), len(grids)), dtype=float)
    for heuristic_index, heuristic in enumerate(heuristics):
        if has_batched_kernel(heuristic, num_clusters):
            if batched is None:
                batched = BatchedGridCosts(caches)
            makespans = batched_makespans(heuristic, batched, root=root)
        else:
            makespans = [
                heuristic.makespan(grid, message_size, root=root, costs=cache)
                for grid, cache in zip(grids, caches)
            ]
        out[heuristic_index] = makespans
    return out


def _evaluate_chunk_task(task) -> tuple[int, int, np.ndarray]:
    """Multiprocessing adapter: unpack one task, keep its placement indices."""
    (count_index, start, heuristic_keys, num_clusters, seeds, message_size, root,
     ranges) = task
    values = _evaluate_chunk(
        heuristic_keys, num_clusters, seeds, message_size, root, ranges
    )
    return count_index, start, values


def _schedule_shipped_chunk(args) -> tuple[int, int, np.ndarray, float]:
    """Worker body of the stack-shipping driver.

    The chunk's ``(K, n, n)`` cost stack arrives as an
    :class:`~repro.runtime.transport.ArrayShipment` (zero-copy views when
    shared memory is in play); only heuristics with batched kernels are ever
    routed here, so no grids are needed worker-side at all.  The returned
    wall time covers the scheduling loop only (not shipment decode), and
    feeds the shaped cost-cache record — a measurement clock, never part of
    the results.
    """
    count_index, start, shipment, heuristic_keys, root = args
    arrays = shipment.load()
    costs = BatchedGridCosts.from_arrays(arrays)
    heuristics = instantiate(heuristic_keys)
    out = np.empty((len(heuristics), costs.num_grids), dtype=float)
    started = time.monotonic()
    for heuristic_index, heuristic in enumerate(heuristics):
        out[heuristic_index] = batched_makespans(heuristic, costs, root=root)
    elapsed = time.monotonic() - started
    costs = arrays = None
    shipment.close()
    return count_index, start, out, elapsed


def _run_stack_shipping(
    tasks: list[tuple],
    makespans: np.ndarray,
    study_pool,
    transport: str | None,
    heuristics,
) -> None:
    """The pipelined stack-shipping driver.

    For each chunk the parent generates the grids, builds the shared cost
    caches and ships the stacked matrices; the workers schedule the previous
    chunks *while the parent builds the next one*.  Chunks whose cluster
    count leaves some heuristic without a batched kernel fall back to seed
    shipping (the worker regenerates its grids), so results are identical to
    the other drivers in every configuration.

    Shipped chunks report their scheduling wall time, which is observed into
    a per-cluster-count :class:`~repro.runtime.chunking.CostModel` under the
    shaped cost-cache key ``pipeline/montecarlo/c<C>-n<C>`` (the scheduling
    matrices of a ``C``-cluster study are ``C x C``, whatever each random
    grid's node count is).  With ``REPRO_COST_CACHE`` set, the observed
    units-per-second persists across studies — seeded from the legacy shared
    ``"pipeline"`` record until a shaped record exists — so the remote
    lane's routing and future chunk pricing start from measured throughput.
    Purely a performance device: the cache never changes results.
    """
    kernel_ready: dict[int, bool] = {}
    cost_models: dict[int, tuple[str, CostModel]] = {}
    max_inflight = 2 * study_pool.workers + 2
    pending: deque[tuple] = deque()

    def cost_model_for(num_clusters: int) -> CostModel:
        entry = cost_models.get(num_clusters)
        if entry is None:
            key = cost_model_key("montecarlo", num_clusters, num_clusters)
            entry = (key, load_cost_model(key, fallback_keys=(_LEGACY_COST_KEY,)))
            cost_models[num_clusters] = entry
        return entry[1]

    def collect() -> None:
        handle, shipment, num_clusters, units = pending.popleft()
        try:
            if shipment is not None:
                count_index, start, values, elapsed = handle.get()
                if elapsed > 0:
                    cost_model_for(num_clusters).observe(units, elapsed)
            else:
                count_index, start, values = handle.get()
            makespans[count_index, :, start : start + values.shape[1]] = values
        finally:
            if shipment is not None:
                shipment.unlink()

    try:
        for task in tasks:
            (count_index, start, heuristic_keys, num_clusters, seeds,
             message_size, root, ranges) = task
            ready = kernel_ready.get(num_clusters)
            if ready is None:
                ready = all(
                    has_batched_kernel(heuristic, num_clusters)
                    for heuristic in heuristics
                )
                kernel_ready[num_clusters] = ready
            if ready:
                generator = RandomGridGenerator(ranges)
                caches = [
                    GridCostCache.for_grid(
                        generator.generate(num_clusters, RandomStream(seed=seed)),
                        message_size,
                    )
                    for seed in seeds
                ]
                shipment = ArrayShipment.pack(
                    BatchedGridCosts(caches).to_arrays(), transport=transport
                )
                # One scheduling chunk costs ~seeds x clusters^2 stacked
                # cells — the same prior _chunk_size works from — so the
                # remote lane can route it throughput-proportionally.
                chunk_units = float(len(seeds) * num_clusters**2)
                handle = study_pool.submit(
                    _schedule_shipped_chunk,
                    (count_index, start, shipment, heuristic_keys, root),
                    units=chunk_units,
                )
                pending.append((handle, shipment, num_clusters, chunk_units))
            else:
                chunk_units = float(len(seeds) * num_clusters**2)
                pending.append(
                    (
                        study_pool.submit(
                            _evaluate_chunk_task, task, units=chunk_units
                        ),
                        None,
                        num_clusters,
                        chunk_units,
                    )
                )
            while len(pending) > max_inflight:
                collect()
        while pending:
            collect()
        # Persist whatever was observed (opt-in via REPRO_COST_CACHE) so
        # the next study's first chunks are priced from measurement; one
        # batched save merges all records under a single writer lock.
        save_cost_models(dict(cost_models.values()))
    except BaseException:
        # A chunk failed (or construction did): release every in-flight
        # shipment before propagating.
        while pending:
            _, shipment, _, _ = pending.popleft()
            if shipment is not None:
                shipment.unlink()
        raise


def run_simulation_study(
    config: SimulationStudyConfig,
    *,
    workers: int | None = None,
    executor: str | None = None,
    transport: str | None = None,
    pool=None,
    hosts: str | None = None,
) -> SimulationStudyResult:
    """Run the Monte-Carlo study described by ``config``.

    Every (cluster count, iteration) pair gets its own deterministic child
    random stream, so results are independent of execution order, chunking,
    driver, executor lane, transport and worker count, and reproducible for
    a fixed seed.

    Parameters
    ----------
    config:
        The study set-up.
    workers:
        Optional fan-out of the batch chunks over the persistent runtime
        pool.  ``None`` consults the ``REPRO_MC_WORKERS`` environment
        variable, then the shared ``REPRO_WORKERS``; ``0``/``1`` run
        in-process.
    executor:
        Fan-out lane: ``"thread"`` (chunks pass to worker threads by
        reference — no pickling, no shipping), ``"process"``, ``"remote"``
        (chunks framed over sockets to the worker agents named by ``hosts``
        / ``REPRO_HOSTS``, loopback agents otherwise), or ``"auto"`` —
        threads when the study's total estimated cost
        (``iterations * clusters**2`` stacked-matrix cells) is too small to
        amortise process shipping, processes otherwise (naming a
        ``transport`` pins auto to processes; auto never picks remote).
        ``None`` consults ``REPRO_EXECUTOR``, then defaults to ``"auto"``.
        Every lane is bit-identical.
    transport:
        ``None`` (default) ships chunk *seeds* and lets each worker
        regenerate its grids — the cheapest payload when generation is
        inexpensive.  ``"auto"``/``"shm"``/``"pickle"`` switch to the
        pipelined stack-shipping driver: the parent generates the grids and
        ships the stacked ``(K, n, n)`` cost matrices zero-copy while workers
        schedule the previous chunk (process and remote lanes — the thread
        lane never ships; on the remote lane the stacks are framed over the
        wire instead of a local segment).  All drivers are bit-identical.
    pool:
        An explicit :class:`~repro.runtime.pool.StudyPool` /
        :class:`~repro.runtime.pool.ThreadStudyPool` /
        :class:`~repro.runtime.remote.RemoteStudyPool`; defaults to the
        process-wide persistent pool of the chosen lane (a passed pool's
        ``kind`` wins over ``executor``).
    hosts:
        Remote-lane agent addresses (``"host:port,host:port"``); only
        consulted when the remote lane is engaged.  ``None`` falls back to
        ``REPRO_HOSTS``, then to auto-spawned loopback agents.
    """
    heuristic_keys = tuple(config.heuristics)
    heuristics = instantiate(heuristic_keys)
    heuristic_names = [h.name for h in heuristics]
    parent_stream = RandomStream(seed=config.seed)
    counts = list(config.cluster_counts)
    makespans = np.empty(
        (len(counts), len(heuristic_keys), config.iterations), dtype=float
    )

    worker_count = resolve_workers(workers, WORKERS_ENV_VAR)
    pool, worker_count = engage_remote_lane(
        pool, executor, workers, worker_count, hosts, transport
    )
    tasks = []
    for count_index, num_clusters in enumerate(counts):
        seeds = [parent_stream.spawn_seed() for _ in range(config.iterations)]
        chunk = _chunk_size(num_clusters, config.iterations, worker_count)
        for start in range(0, config.iterations, chunk):
            tasks.append(
                (
                    count_index,
                    start,
                    heuristic_keys,
                    num_clusters,
                    seeds[start : start + chunk],
                    config.message_size,
                    config.root_cluster,
                    config.ranges,
                )
            )

    if worker_count > 1 and len(tasks) > 1:
        if pool is not None:
            lane = getattr(pool, "kind", "process")
            study_pool = pool
        else:
            # Cost prior: one unit per stacked scheduling-matrix cell.
            total_units = config.iterations * sum(
                num_clusters * num_clusters for num_clusters in counts
            )
            lane = choose_executor(executor, total_units, transport=transport)
            study_pool = get_pool(worker_count, kind=lane, hosts=hosts)
        if transport is not None and lane in ("process", "remote"):
            _run_stack_shipping(tasks, makespans, study_pool, transport, heuristics)
        else:
            # Seed shipping; on the thread lane "shipping" is a by-reference
            # argument pass — the worker still regenerates its chunk's grids,
            # which is what keeps the thread and process lanes bit-identical.
            results = study_pool.imap_unordered(_evaluate_chunk_task, tasks)
            for count_index, start, values in results:
                makespans[count_index, :, start : start + values.shape[1]] = values
    else:
        for task in tasks:
            count_index, start, values = _evaluate_chunk_task(task)
            makespans[count_index, :, start : start + values.shape[1]] = values

    return SimulationStudyResult(
        config=config,
        heuristic_names=heuristic_names,
        cluster_counts=counts,
        makespans=makespans,
    )
