"""The Monte-Carlo simulation study (paper §6, Figures 1–3).

For every cluster count the study generates ``iterations`` independent random
grids (Table 2 parameter ranges), schedules a 1 MB broadcast with every
heuristic, and records the makespans.  The reported quantity is the average
completion time per heuristic and cluster count — the y-axis of Figures 1, 2
and 3 — together with enough raw material (per-iteration minima and hit
counts) for the Figure 4 hit-rate analysis to reuse the same runs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.registry import instantiate
from repro.experiments.config import SimulationStudyConfig
from repro.topology.generators import RandomGridGenerator
from repro.utils.rng import RandomStream

#: Two schedules within this relative tolerance of each other are considered
#: equally good when computing hits against the per-iteration global minimum.
HIT_RELATIVE_TOLERANCE = 1e-9


@dataclass
class SimulationStudyResult:
    """Results of one Monte-Carlo study.

    Attributes
    ----------
    config:
        The configuration that produced the result.
    heuristic_names:
        Display names, in the order of ``config.heuristics``.
    cluster_counts:
        The swept cluster counts.
    makespans:
        Array of shape ``(len(cluster_counts), len(heuristics), iterations)``
        holding every observed makespan in seconds.
    """

    config: SimulationStudyConfig
    heuristic_names: list[str]
    cluster_counts: list[int]
    makespans: np.ndarray

    # -- derived statistics -----------------------------------------------------------

    def mean_completion_times(self) -> np.ndarray:
        """Mean makespan per (cluster count, heuristic) — the paper's curves."""
        return self.makespans.mean(axis=2)

    def std_completion_times(self) -> np.ndarray:
        """Standard deviation of the makespan per (cluster count, heuristic)."""
        return self.makespans.std(axis=2)

    def global_minima(self) -> np.ndarray:
        """Per-iteration global minimum over the evaluated heuristics.

        Shape ``(len(cluster_counts), iterations)``.  This is the reference
        the paper calls the "global minimum" when the true optimum is too
        expensive to compute.
        """
        return self.makespans.min(axis=1)

    def hit_counts(self) -> np.ndarray:
        """Number of iterations where each heuristic matches the global minimum.

        Shape ``(len(cluster_counts), len(heuristics))`` — the quantity
        plotted in Figure 4 (out of ``iterations``).
        """
        minima = self.global_minima()[:, None, :]
        tolerance = HIT_RELATIVE_TOLERANCE * np.maximum(minima, 1e-300)
        hits = self.makespans <= minima + tolerance
        return hits.sum(axis=2)

    def hit_rates(self) -> np.ndarray:
        """Hit counts normalised by the number of iterations."""
        return self.hit_counts() / self.config.iterations

    def series(self, heuristic_name: str) -> list[float]:
        """The mean-completion-time series of one heuristic (by display name)."""
        try:
            index = self.heuristic_names.index(heuristic_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown heuristic {heuristic_name!r}; available: {self.heuristic_names}"
            ) from exc
        return self.mean_completion_times()[:, index].tolist()

    def as_table(self) -> list[dict[str, float]]:
        """One dict per cluster count mapping heuristic names to mean times."""
        means = self.mean_completion_times()
        rows: list[dict[str, float]] = []
        for row_index, count in enumerate(self.cluster_counts):
            row: dict[str, float] = {"clusters": float(count)}
            for column_index, name in enumerate(self.heuristic_names):
                row[name] = float(means[row_index, column_index])
            rows.append(row)
        return rows


def run_simulation_study(config: SimulationStudyConfig) -> SimulationStudyResult:
    """Run the Monte-Carlo study described by ``config``.

    Every (cluster count, iteration) pair gets its own deterministic child
    random stream, so results are independent of execution order and
    reproducible for a fixed seed.
    """
    heuristics = instantiate(config.heuristics)
    generator = RandomGridGenerator(config.ranges)
    parent_stream = RandomStream(seed=config.seed)
    counts = list(config.cluster_counts)
    makespans = np.empty(
        (len(counts), len(heuristics), config.iterations), dtype=float
    )
    for count_index, num_clusters in enumerate(counts):
        for iteration in range(config.iterations):
            stream = parent_stream.spawn()
            grid = generator.generate(num_clusters, stream)
            for heuristic_index, heuristic in enumerate(heuristics):
                schedule = heuristic.schedule(
                    grid, config.message_size, root=config.root_cluster
                )
                makespans[count_index, heuristic_index, iteration] = schedule.makespan
    return SimulationStudyResult(
        config=config,
        heuristic_names=[h.name for h in heuristics],
        cluster_counts=counts,
        makespans=makespans,
    )
