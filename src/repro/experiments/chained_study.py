"""Warm-network collective pipelines (back-to-back collectives, one workload).

Real applications rarely run one collective on an idle network: a scatter
feeds an all-to-all, a broadcast repeats every iteration.  The runtime's
warm-network chaining (``reset_network=False`` tasks in
:func:`~repro.simulator.batch.execute_programs`) measures exactly that — the
stages of a pipeline issue at time zero and serialise on the NICs they
share, so a later stage queues behind the tail of an earlier one and the
noise stream runs through the whole pipeline, just like the scalar engine's
``execute_program(reset_network=False)``.

:func:`run_chained_study` sweeps a pipeline of collectives over the
configured message sizes and measures every stage twice:

* **warm** — the stages chained on one warm network (the pipeline as one
  workload; its completion is the last stage's makespan), and
* **fresh** — the same stages on fresh networks (the barrier-separated
  baseline; its completion is the *sum* of stage makespans).

The gap between the two (:meth:`ChainedStudyResult.overlap_gain`) quantifies
how the pipeline behaves: above 1 it recovers idle wire time by overlapping
stages, below 1 the stages contend for the same NICs and chaining costs a
little extra queueing.  Chains are never split across workers, so the study
fans out over sizes with bit-identical results at any worker count.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.costs import GridCostCache
from repro.core.registry import instantiate
from repro.experiments.config import PracticalStudyConfig
from repro.experiments.practical_study import (
    PRACTICAL_WORKERS_ENV_VAR,
    _check_engine,
)
from repro.mpi.alltoall import grid_aware_alltoall_program
from repro.mpi.bcast import grid_aware_bcast_program
from repro.mpi.scatter import grid_aware_scatter_program
from repro.runtime.pool import engage_remote_lane
from repro.simulator.batch import ExecutionTask, execute_programs
from repro.simulator.network import NetworkConfig
from repro.topology.grid import Grid
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import derive_seed
from repro.utils.workers import resolve_workers

#: Collectives a pipeline stage can name.
CHAIN_COLLECTIVES = ("bcast", "scatter", "alltoall")


@dataclass
class ChainedStudyResult:
    """Stage makespans of a collective pipeline, warm-chained and fresh.

    Attributes
    ----------
    config:
        The configuration used (message sizes double as per-stage payload /
        chunk sizes).
    stage_names:
        The pipeline stages in execution order (collective names, numbered
        when repeated).
    message_sizes:
        Swept sizes in bytes.
    warm:
        Array ``(len(message_sizes), len(stage_names))`` of stage makespans
        when the stages chain on one warm network.
    fresh:
        Same shape, each stage on its own fresh network (the barrier
        baseline).
    """

    config: PracticalStudyConfig
    stage_names: list[str]
    message_sizes: list[int]
    warm: np.ndarray
    fresh: np.ndarray

    def pipeline_makespans(self) -> np.ndarray:
        """Completion of the warm pipeline per size (last stage to finish).

        Chained stages all issue at time zero and serialise on the NICs, so
        the pipeline is done when its slowest stage is.
        """
        return self.warm.max(axis=1)

    def barrier_makespans(self) -> np.ndarray:
        """Completion of the barrier-separated baseline per size (stage sum)."""
        return self.fresh.sum(axis=1)

    def overlap_gain(self) -> np.ndarray:
        """Barrier completion over pipeline completion, element-wise.

        Above 1 the pipeline recovers idle wire time (stages overlap);
        below 1 the stages contend for the same NICs and chaining costs a
        little extra queueing — both are real effects worth measuring.
        """
        pipeline = self.pipeline_makespans()
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(
                pipeline > 0, self.barrier_makespans() / pipeline, np.nan
            )

    def as_table(self) -> list[dict[str, float]]:
        """Rows of (size, pipelined, barrier, gain) for the CLI/reporting."""
        pipeline = self.pipeline_makespans()
        barrier = self.barrier_makespans()
        gain = self.overlap_gain()
        return [
            {
                "message_size": float(size),
                "pipelined": float(pipeline[index]),
                "barrier": float(barrier[index]),
                "overlap_gain": float(gain[index]),
            }
            for index, size in enumerate(self.message_sizes)
        ]


def _stage_builders(config: PracticalStudyConfig, grid: Grid):
    """One ``(name, build(size) -> program)`` per collective kind.

    The broadcast and scatter stages are driven by the first configured
    heuristic (the pipeline studies network behaviour, not heuristic
    ranking).
    """
    heuristic = instantiate(config.heuristics)[0]

    def build_bcast(message_size):
        costs = GridCostCache.for_grid(grid, message_size)
        schedule = heuristic.schedule(
            grid, message_size, root=config.root_cluster, costs=costs
        )
        return grid_aware_bcast_program(
            grid, schedule, message_size, local_tree=config.local_tree
        )

    def build_scatter(message_size):
        program, _ = grid_aware_scatter_program(
            grid,
            message_size,
            heuristic=heuristic,
            root_cluster=config.root_cluster,
        )
        return program

    return {
        "bcast": build_bcast,
        "scatter": build_scatter,
        "alltoall": lambda message_size: grid_aware_alltoall_program(
            grid, message_size
        ),
    }


def run_chained_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    stages: tuple[str, ...] = ("scatter", "alltoall"),
    repeat: int = 1,
    workers: int | None = None,
    engine: str = "batched",
    executor: str | None = None,
    transport: str | None = None,
    chunking: str = "adaptive",
    hosts: str | None = None,
    pool=None,
) -> ChainedStudyResult:
    """Measure a pipeline of collectives warm-chained versus barrier-separated.

    Parameters
    ----------
    config:
        Sizes / noise / seed configuration (defaults to the paper set-up;
        sizes are per-stage payload or chunk sizes).
    grid:
        Topology; defaults to the Table 3 GRID5000 grid.
    stages:
        Collective names from :data:`CHAIN_COLLECTIVES`, in pipeline order.
    repeat:
        Repeat the stage sequence this many times (e.g. ``("bcast",)`` with
        ``repeat=4`` measures four back-to-back broadcasts).
    workers:
        Fan sizes out over the persistent runtime pool (chains are never
        split).  ``None`` consults the ``REPRO_PRACTICAL_WORKERS``
        environment variable, then the shared ``REPRO_WORKERS``.
    engine:
        ``"batched"`` (default) or the scalar reference.
    executor:
        Fan-out lane — ``"thread"`` / ``"process"`` / ``"remote"`` /
        ``"auto"`` (default via ``REPRO_EXECUTOR``); see
        :func:`~repro.simulator.batch.execute_programs`.  Chains stay
        atomic on every lane — a warm pipeline never spans two workers or
        two agents.  Bit-identical either way.
    transport:
        Worker shipping transport on the process lane (see
        :func:`~repro.simulator.batch.execute_programs`).
    chunking:
        ``"adaptive"`` (default) balances worker chunks by per-stage message
        cost — exactly what a mixed scatter/all-to-all pipeline needs, an
        all-to-all stage costs ~20x a scatter stage — ``"fixed"`` keeps the
        task-count split.  Bit-identical either way.
    hosts:
        Remote-lane agent addresses (``"host:port,host:port"``); only
        consulted when the remote lane is engaged.  ``None`` falls back to
        ``REPRO_HOSTS``, then to auto-spawned loopback agents.
    pool:
        An explicit runtime pool of any lane; defaults to the process-wide
        persistent pool of the chosen lane (a passed pool's ``kind`` wins
        over ``executor``).
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    _check_engine(engine)
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    for stage in stages:
        if stage not in CHAIN_COLLECTIVES:
            raise ValueError(
                f"unknown collective {stage!r}; choose from {CHAIN_COLLECTIVES}"
            )
    if not stages:
        raise ValueError("stages must not be empty")
    worker_count = resolve_workers(workers, PRACTICAL_WORKERS_ENV_VAR)
    pool, worker_count = engage_remote_lane(
        pool, executor, workers, worker_count, hosts, transport
    )

    sequence = list(stages) * repeat
    counts: dict[str, int] = {}
    stage_names: list[str] = []
    for name in sequence:
        counts[name] = counts.get(name, 0) + 1
        stage_names.append(
            name if sequence.count(name) == 1 else f"{name}#{counts[name]}"
        )

    builders = _stage_builders(config, grid)
    sizes = list(config.message_sizes)
    tasks: list[ExecutionTask] = []
    for message_size in sizes:
        programs = [builders[name](message_size) for name in sequence]
        # Warm pipeline: one chain per size, seeded at the head.
        tasks.append(
            ExecutionTask(
                programs[0],
                noise_seed=derive_seed(config.seed, "chain", message_size),
            )
        )
        tasks.extend(
            ExecutionTask(program, reset_network=False)
            for program in programs[1:]
        )
        # Barrier baseline: the same stages, each on a fresh network.
        tasks.extend(
            ExecutionTask(
                program,
                noise_seed=derive_seed(
                    config.seed, "fresh", stage_index, message_size
                ),
            )
            for stage_index, program in enumerate(programs)
        )

    executions = execute_programs(
        grid,
        tasks,
        config=NetworkConfig(noise_sigma=config.noise_sigma, seed=config.seed),
        collect_traces=False,
        workers=worker_count,
        engine=engine,
        executor=executor,
        transport=transport,
        chunking=chunking,
        pool=pool,
        hosts=hosts,
    )
    num_stages = len(sequence)
    makespans = np.array(
        [execution.makespan for execution in executions], dtype=float
    ).reshape(len(sizes), 2 * num_stages)
    return ChainedStudyResult(
        config=config,
        stage_names=stage_names,
        message_sizes=sizes,
        warm=makespans[:, :num_stages],
        fresh=makespans[:, num_stages:],
    )
