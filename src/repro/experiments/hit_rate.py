"""Hit-rate analysis (paper §6, Figure 4).

The true optimal schedule is too expensive to compute for large grids, so the
paper compares heuristics against the **global minimum**: the best makespan
achieved *by any of the evaluated heuristics* on each Monte-Carlo iteration.
The *hit rate* of a heuristic is the number of iterations on which it matches
that global minimum.  The paper's key observation — reproduced by this
module — is that the hit rate of ECEF, ECEF-LA and ECEF-LAt decreases as the
number of clusters grows, while ECEF-LAT stays roughly constant (≈45 %).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.config import SimulationStudyConfig
from repro.experiments.simulation_study import (
    SimulationStudyResult,
    run_simulation_study,
)


@dataclass
class HitRateResult:
    """Hit counts and rates of a set of heuristics against the global minimum.

    Attributes
    ----------
    study:
        The underlying Monte-Carlo study (kept so callers can inspect the raw
        makespans too).
    heuristic_names:
        Display names of the compared heuristics.
    cluster_counts:
        Swept cluster counts.
    hit_counts:
        Array of shape ``(len(cluster_counts), len(heuristics))`` counting, for
        each cluster count, how many of the study's iterations each heuristic
        matched the global minimum (Figure 4's y-axis, scaled by iterations).
    """

    study: SimulationStudyResult
    heuristic_names: list[str]
    cluster_counts: list[int]
    hit_counts: np.ndarray

    @property
    def iterations(self) -> int:
        """Number of Monte-Carlo iterations behind each hit count."""
        return self.study.config.iterations

    def hit_rates(self) -> np.ndarray:
        """Hit counts normalised to [0, 1]."""
        return self.hit_counts / float(self.iterations)

    def series(self, heuristic_name: str) -> list[int]:
        """The hit-count series of one heuristic (by display name)."""
        try:
            index = self.heuristic_names.index(heuristic_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown heuristic {heuristic_name!r}; available: {self.heuristic_names}"
            ) from exc
        return self.hit_counts[:, index].astype(int).tolist()

    def trend_slope(self, heuristic_name: str) -> float:
        """Least-squares slope of a heuristic's hit *rate* versus cluster count.

        Negative slopes indicate the degradation the paper reports for
        ECEF / ECEF-LA / ECEF-LAt; a slope close to zero reproduces the
        constant behaviour of ECEF-LAT.
        """
        rates = np.asarray(self.series(heuristic_name), dtype=float) / self.iterations
        counts = np.asarray(self.cluster_counts, dtype=float)
        slope, _intercept = np.polyfit(counts, rates, deg=1)
        return float(slope)

    def as_table(self) -> list[dict[str, float]]:
        """One dict per cluster count mapping heuristic names to hit counts."""
        rows: list[dict[str, float]] = []
        for row_index, count in enumerate(self.cluster_counts):
            row: dict[str, float] = {"clusters": float(count)}
            for column_index, name in enumerate(self.heuristic_names):
                row[name] = float(self.hit_counts[row_index, column_index])
            rows.append(row)
        return rows


def run_hit_rate_study(
    config: SimulationStudyConfig,
    *,
    workers: int | None = None,
    executor: str | None = None,
    transport: str | None = None,
    pool=None,
    hosts: str | None = None,
) -> HitRateResult:
    """Run a Monte-Carlo study and derive the Figure 4 hit-rate analysis.

    The underlying study uses the batched scheduling engine and shared
    per-grid cost caches; ``workers`` optionally fans the iterations out over
    the persistent runtime pool (``None`` consults ``REPRO_MC_WORKERS``),
    ``executor`` picks the execution lane (``None`` consults
    ``REPRO_EXECUTOR``; the remote lane reads its host list from ``hosts`` /
    ``REPRO_HOSTS``) and ``transport`` selects the seed- or stack-shipping
    driver (see :func:`run_simulation_study`).
    """
    study = run_simulation_study(
        config,
        workers=workers,
        executor=executor,
        transport=transport,
        pool=pool,
        hosts=hosts,
    )
    return hit_rate_from_study(study)


def hit_rate_from_study(study: SimulationStudyResult) -> HitRateResult:
    """Compute the hit-rate analysis from an existing study result."""
    return HitRateResult(
        study=study,
        heuristic_names=list(study.heuristic_names),
        cluster_counts=list(study.cluster_counts),
        hit_counts=study.hit_counts(),
    )
