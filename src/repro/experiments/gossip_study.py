"""The tree-vs-gossip dissemination study (ROADMAP open item 1).

The paper's scheduled trees deliver a broadcast in the fewest possible
messages but stand or fall with every single link; epidemics spend traffic to
buy robustness.  This study makes that trade-off measurable: for every
(protocol, network size) cell it runs one seeded gossip dissemination and
records rounds-to-delivery, delivery fraction, message traffic and the
pLogP-timed makespan/delivery time — under optional churn (seeded join/leave
schedules) and per-round log-normal noise.

Cells fan out over the persistent study runtime
(:mod:`repro.runtime.pool`); each cell derives its own seed from
``(seed, "gossip/study", protocol, num_nodes)``, so the study is
bit-identical for any executor lane, chunking or worker count — the same
contract every other study in this package honours.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gossip.engine import DEFAULT_GOSSIP_PARAMS, run_gossip
from repro.gossip.spec import GOSSIP_PROTOCOLS, MAX_ROUNDS, ChurnSpec, GossipSpec
from repro.model.plogp import PLogPParameters
from repro.runtime.chunking import choose_executor, gossip_cost
from repro.runtime.pool import engage_remote_lane, get_pool
from repro.utils.rng import DEFAULT_SEED, derive_seed
from repro.utils.validation import check_non_negative, check_positive
from repro.utils.workers import resolve_workers

#: Environment variable consulted for the default worker count (the shared
#: ``REPRO_WORKERS`` is the fallback; see
#: :func:`repro.utils.workers.resolve_workers`).
WORKERS_ENV_VAR = "REPRO_GOSSIP_WORKERS"

#: The per-cell metrics recorded by the study, in storage order.
METRIC_NAMES = (
    "rounds_executed",
    "rounds_to_delivery",
    "delivered_count",
    "ever_alive_count",
    "total_messages",
    "makespan",
    "delivery_time",
)


@dataclass(frozen=True)
class GossipStudyConfig:
    """One tree-vs-gossip study: a (protocols x network sizes) grid.

    Attributes
    ----------
    protocols:
        Protocols to compare (any subset of
        :data:`~repro.gossip.spec.GOSSIP_PROTOCOLS`).
    node_counts:
        Network sizes to sweep.
    fanout / ttl / rounds:
        Forwarded into every cell's :class:`~repro.gossip.spec.GossipSpec`.
    churn:
        Optional :class:`~repro.gossip.spec.ChurnSpec` applied to every cell
        (each cell draws its own schedule from its derived seed).
    noise_sigma:
        Log-normal sigma of the per-round duration jitter (``0`` = noise-free
        pLogP timing).
    message_size:
        Payload size in bytes, for the timing model.
    params:
        The pLogP link model; defaults to the WAN-flavoured
        :data:`~repro.gossip.engine.DEFAULT_GOSSIP_PARAMS`.
    seed:
        Root seed; every cell derives its own child seed from it.
    """

    protocols: tuple[str, ...] = GOSSIP_PROTOCOLS
    node_counts: tuple[int, ...] = (1_000, 10_000, 100_000)
    fanout: int = 2
    ttl: int = 0
    rounds: int = 64
    churn: ChurnSpec | None = None
    noise_sigma: float = 0.0
    message_size: float = 1024.0
    params: PLogPParameters = field(default=DEFAULT_GOSSIP_PARAMS)
    seed: int = DEFAULT_SEED

    def __post_init__(self) -> None:
        if not self.protocols:
            raise ValueError("protocols must not be empty")
        for protocol in self.protocols:
            if protocol not in GOSSIP_PROTOCOLS:
                raise ValueError(
                    f"protocol must be one of {GOSSIP_PROTOCOLS}, got {protocol!r}"
                )
        if len(set(self.protocols)) != len(self.protocols):
            raise ValueError(f"duplicate protocols in {self.protocols!r}")
        if not self.node_counts:
            raise ValueError("node_counts must not be empty")
        for count in self.node_counts:
            if isinstance(count, bool) or not isinstance(count, (int, np.integer)):
                raise TypeError("node_counts must be ints")
            check_positive(count, "node count")
        if not 1 <= self.rounds <= MAX_ROUNDS:
            raise ValueError(f"rounds must be in [1, {MAX_ROUNDS}], got {self.rounds}")
        check_non_negative(self.noise_sigma, "noise_sigma")
        check_non_negative(self.message_size, "message_size")

    def spec_for(self, protocol: str, num_nodes: int) -> GossipSpec:
        """The fully specified run of one study cell (with its derived seed)."""
        fanout = min(self.fanout, max(1, num_nodes - 1))
        return GossipSpec(
            protocol=protocol,
            num_nodes=int(num_nodes),
            fanout=fanout,
            ttl=self.ttl,
            rounds=self.rounds,
            seed=derive_seed(self.seed, "gossip/study", protocol, int(num_nodes)),
            churn=self.churn,
        )


@dataclass
class GossipStudyResult:
    """Results of one tree-vs-gossip study.

    Attributes
    ----------
    config:
        The configuration that produced the result.
    metrics:
        Array of shape ``(len(protocols), len(node_counts),
        len(METRIC_NAMES))`` — the raw per-cell numbers, in
        :data:`METRIC_NAMES` order.
    """

    config: GossipStudyConfig
    metrics: np.ndarray

    def metric(self, name: str) -> np.ndarray:
        """One metric's ``(protocols, node_counts)`` plane, by name."""
        try:
            index = METRIC_NAMES.index(name)
        except ValueError as exc:
            raise ValueError(
                f"unknown metric {name!r}; available: {METRIC_NAMES}"
            ) from exc
        return self.metrics[:, :, index]

    def delivery_fractions(self) -> np.ndarray:
        """Delivered over ever-alive nodes per cell — the robustness plane."""
        return self.metric("delivered_count") / np.maximum(
            1.0, self.metric("ever_alive_count")
        )

    def messages_per_node(self) -> np.ndarray:
        """Total traffic normalised by network size — the overhead plane."""
        return self.metric("total_messages") / np.asarray(
            self.config.node_counts, dtype=float
        )

    def as_table(self) -> list[dict[str, float | str]]:
        """One row per (protocol, network size) cell, docs/CLI-friendly."""
        rows: list[dict[str, float | str]] = []
        fractions = self.delivery_fractions()
        per_node = self.messages_per_node()
        for p_index, protocol in enumerate(self.config.protocols):
            for n_index, num_nodes in enumerate(self.config.node_counts):
                cell = self.metrics[p_index, n_index]
                rows.append(
                    {
                        "protocol": protocol,
                        "nodes": float(num_nodes),
                        "rounds": float(cell[METRIC_NAMES.index("rounds_executed")]),
                        "rounds_to_delivery": float(
                            cell[METRIC_NAMES.index("rounds_to_delivery")]
                        ),
                        "delivery_fraction": float(fractions[p_index, n_index]),
                        "messages_per_node": float(per_node[p_index, n_index]),
                        "makespan": float(cell[METRIC_NAMES.index("makespan")]),
                        "delivery_time": float(
                            cell[METRIC_NAMES.index("delivery_time")]
                        ),
                    }
                )
        return rows


def _gossip_cell_task(task) -> tuple[int, int, np.ndarray]:
    """Worker body: run one (protocol, network size) cell, keep its indices."""
    p_index, n_index, config = task
    spec = config.spec_for(config.protocols[p_index], config.node_counts[n_index])
    result = run_gossip(spec)
    values = np.array(
        [
            float(result.rounds_executed),
            float(result.rounds_to_delivery),
            float(result.delivered_count),
            float(result.ever_alive_count),
            float(result.total_messages),
            result.makespan(
                config.message_size,
                params=config.params,
                noise_sigma=config.noise_sigma,
            ),
            result.delivery_time(
                config.message_size,
                params=config.params,
                noise_sigma=config.noise_sigma,
            ),
        ],
        dtype=float,
    )
    return p_index, n_index, values


def run_gossip_study(
    config: GossipStudyConfig,
    *,
    workers: int | None = None,
    executor: str | None = None,
    pool=None,
    hosts: str | None = None,
) -> GossipStudyResult:
    """Run the tree-vs-gossip study described by ``config``.

    Every (protocol, network size) cell derives its own seed from the
    config's root seed, so results are independent of execution order,
    chunking, executor lane and worker count, and reproducible for a fixed
    seed.

    Parameters
    ----------
    config:
        The study set-up.
    workers:
        Optional fan-out of the cells over the persistent runtime pool.
        ``None`` consults the ``REPRO_GOSSIP_WORKERS`` environment variable,
        then the shared ``REPRO_WORKERS``; ``0``/``1`` run in-process.
    executor:
        Fan-out lane: ``"thread"``, ``"process"``, ``"remote"`` (cells framed
        over sockets to the worker agents named by ``hosts`` /
        ``REPRO_HOSTS``), or ``"auto"`` — threads when the study's total
        estimated cost (node-rounds, via
        :func:`repro.runtime.chunking.gossip_cost`) is too small to amortise
        process shipping, processes otherwise.  ``None`` consults
        ``REPRO_EXECUTOR``, then defaults to ``"auto"``.  Every lane is
        bit-identical.
    pool:
        An explicit :class:`~repro.runtime.pool.StudyPool` /
        :class:`~repro.runtime.pool.ThreadStudyPool` /
        :class:`~repro.runtime.remote.RemoteStudyPool`; defaults to the
        process-wide persistent pool of the chosen lane (a passed pool's
        ``kind`` wins over ``executor``).
    hosts:
        Remote-lane agent addresses (``"host:port,host:port"``); only
        consulted when the remote lane is engaged.  ``None`` falls back to
        ``REPRO_HOSTS``, then to auto-spawned loopback agents.
    """
    metrics = np.empty(
        (len(config.protocols), len(config.node_counts), len(METRIC_NAMES)),
        dtype=float,
    )
    tasks = [
        (p_index, n_index, config)
        for p_index in range(len(config.protocols))
        for n_index in range(len(config.node_counts))
    ]
    cell_units = [
        gossip_cost(int(config.node_counts[n_index]), config.rounds)
        for _, n_index, _ in tasks
    ]

    worker_count = resolve_workers(workers, WORKERS_ENV_VAR)
    pool, worker_count = engage_remote_lane(
        pool, executor, workers, worker_count, hosts, None
    )
    if worker_count > 1 and len(tasks) > 1:
        if pool is not None:
            study_pool = pool
        else:
            lane = choose_executor(executor, sum(cell_units))
            study_pool = get_pool(worker_count, kind=lane, hosts=hosts)
        handles = [
            study_pool.submit(_gossip_cell_task, task, units=units)
            for task, units in zip(tasks, cell_units)
        ]
        for handle in handles:
            p_index, n_index, values = handle.get()
            metrics[p_index, n_index] = values
    else:
        for task in tasks:
            p_index, n_index, values = _gossip_cell_task(task)
            metrics[p_index, n_index] = values

    return GossipStudyResult(config=config, metrics=metrics)
