"""The practical evaluation on the Table 3 grid (paper §7, Figures 5 and 6).

For every heuristic and every message size the study produces two numbers:

* the **predicted** completion time — the makespan of the heuristic's
  schedule under the pLogP model (Figure 5), computed on the shared
  :class:`~repro.core.costs.GridCostCache` matrices, and
* the **measured** completion time — the makespan observed when the
  corresponding node-level program is executed on the discrete-event
  simulator, optionally with noise (Figure 6).

The grid-unaware binomial broadcast ("Default LAM" in Figure 6) is measured
as well; it has no scheduled prediction, matching the paper, which only plots
it in the measured figure.

The measured sweep runs through the study runtime: with workers the driver is
**pipelined** — each message size's programs are compiled and shipped to the
persistent :class:`~repro.runtime.pool.StudyPool` (zero-copy shared memory
when available) and measured *while the next size's schedules construct*;
without workers everything executes in one in-process batched pass.  Noise
replicas are first-class: ``replicas=N`` measures every curve point ``N``
times and the result carries both the per-replica columns and their
mean/std aggregation.  Every (curve label, size, replica) owns a noise seed
derived from the config seed, so results are bit-identical regardless of
engine, driver (pipelined or sequential), transport, execution order,
heuristic-tuple order, pool lifetime or worker count.

Beyond the paper's broadcast figures, the same machinery measures the §8
"future work" collectives: :func:`run_scatter_study` and
:func:`run_alltoall_study` sweep the grid-aware strategies against their flat
/ direct baselines, with the all-to-all programs' ``initially_active`` ranks
taken from the program metadata.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.base import SchedulingHeuristic
from repro.core.costs import GridCostCache
from repro.core.registry import instantiate
from repro.experiments.config import PracticalStudyConfig
from repro.mpi.alltoall import direct_alltoall_program, grid_aware_alltoall_program
from repro.mpi.bcast import binomial_bcast_program, grid_aware_bcast_program
from repro.mpi.scatter import flat_scatter_program, grid_aware_scatter_program
from repro.runtime.chunking import choose_executor
from repro.runtime.pipeline import PipelinedExecutor
from repro.runtime.pool import engage_remote_lane, get_pool
from repro.simulator.batch import ENGINES, ExecutionTask, execute_programs
from repro.simulator.network import NetworkConfig
from repro.topology.grid import Grid
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import derive_seed
from repro.utils.workers import resolve_workers

#: Display name of the grid-unaware baseline, as labelled in Figure 6.
BINOMIAL_BASELINE_NAME = "Default LAM"

#: Environment variable consulted for the default measured-sweep worker count
#: (the shared ``REPRO_WORKERS`` is the fallback; see
#: :func:`repro.utils.workers.resolve_workers`).
PRACTICAL_WORKERS_ENV_VAR = "REPRO_PRACTICAL_WORKERS"


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


def _check_replicas(replicas: int) -> None:
    if isinstance(replicas, bool) or not isinstance(replicas, int) or replicas < 1:
        raise ValueError(f"replicas must be an integer >= 1, got {replicas!r}")


def _replica_seed(seed: int, label: str, size: int, replica: int, replicas: int) -> int:
    """The noise seed of one (curve, size, replica) measurement.

    A single-replica study keeps the historical ``(seed, label, size)``
    derivation, so ``replicas=1`` results are bitwise those of the
    pre-replica API; multi-replica studies key the replica index in as well.
    """
    if replicas == 1:
        return derive_seed(seed, label, size)
    return derive_seed(seed, label, size, replica)


@dataclass
class PracticalStudyResult:
    """Predicted and measured completion times on a concrete grid.

    Attributes
    ----------
    config:
        The configuration used.
    heuristic_names:
        Display names of the scheduled heuristics (the binomial baseline is
        reported separately).
    message_sizes:
        Payload sizes in bytes (x-axis).
    predicted:
        Array ``(len(message_sizes), len(heuristics))`` of model-predicted
        makespans (Figure 5).
    measured:
        Array of the same shape with simulator-measured makespans (Figure 6),
        averaged over the noise replicas (with one replica the mean *is* the
        single measurement, bit for bit).
    baseline_measured:
        Measured makespans of the grid-unaware binomial broadcast (replica
        mean), or ``None`` when the baseline was not requested.
    measured_replicas:
        Array ``(replicas, len(message_sizes), len(heuristics))`` holding
        every individual noisy measurement.
    measured_std:
        Per-point standard deviation across replicas (zeros with one
        replica).
    baseline_replicas, baseline_std:
        The same per-replica / spread columns for the binomial baseline
        (``None`` when the baseline was not requested).
    """

    config: PracticalStudyConfig
    heuristic_names: list[str]
    message_sizes: list[int]
    predicted: np.ndarray
    measured: np.ndarray
    baseline_measured: np.ndarray | None
    measured_replicas: np.ndarray | None = None
    measured_std: np.ndarray | None = None
    baseline_replicas: np.ndarray | None = None
    baseline_std: np.ndarray | None = None

    @property
    def num_replicas(self) -> int:
        """Number of noise replicas behind each measured point."""
        if self.measured_replicas is None:
            return 1
        return int(self.measured_replicas.shape[0])

    def prediction_error(self) -> np.ndarray:
        """Relative error |measured - predicted| / measured, element-wise.

        The paper's §7 claim is that "performance predictions fit with a good
        precision the practical results"; this is the quantity that
        substantiates it (zero-size messages are excluded by callers when
        averaging, as both numbers are sub-millisecond there).
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            error = np.abs(self.measured - self.predicted) / np.where(
                self.measured > 0, self.measured, np.nan
            )
        return error

    def predicted_series(self, heuristic_name: str) -> list[float]:
        """Predicted completion times of one heuristic across message sizes."""
        return self.predicted[:, self._index(heuristic_name)].tolist()

    def measured_series(
        self, heuristic_name: str, *, replica: int | None = None
    ) -> list[float]:
        """Measured completion times of one heuristic across message sizes.

        ``replica`` selects one noise replica's raw column; the default is
        the replica mean (identical to the raw column with one replica).
        """
        column = self._index(heuristic_name)
        if replica is None:
            return self.measured[:, column].tolist()
        if self.measured_replicas is None or not (
            0 <= replica < self.num_replicas
        ):
            raise ValueError(
                f"replica must be in [0, {self.num_replicas}), got {replica}"
            )
        return self.measured_replicas[replica, :, column].tolist()

    def _index(self, heuristic_name: str) -> int:
        try:
            return self.heuristic_names.index(heuristic_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown heuristic {heuristic_name!r}; available: {self.heuristic_names}"
            ) from exc

    def as_table(self, *, which: str = "measured") -> list[dict[str, float]]:
        """Rows of (message size, per-heuristic time), like the figures' data.

        Parameters
        ----------
        which:
            ``"measured"`` (default) or ``"predicted"``.
        """
        if which == "measured":
            data = self.measured
        elif which == "predicted":
            data = self.predicted
        else:
            raise ValueError("which must be 'measured' or 'predicted'")
        rows: list[dict[str, float]] = []
        for row_index, size in enumerate(self.message_sizes):
            row: dict[str, float] = {"message_size": float(size)}
            for column_index, name in enumerate(self.heuristic_names):
                row[name] = float(data[row_index, column_index])
            if which == "measured" and self.baseline_measured is not None:
                row[BINOMIAL_BASELINE_NAME] = float(self.baseline_measured[row_index])
            rows.append(row)
        return rows


def run_practical_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    workers: int | None = None,
    engine: str = "batched",
    executor: str | None = None,
    replicas: int = 1,
    pipeline: bool | None = None,
    transport: str | None = None,
    chunking: str = "adaptive",
    pool=None,
    hosts: str | None = None,
) -> PracticalStudyResult:
    """Run the Figure 5 / Figure 6 experiment.

    Parameters
    ----------
    config:
        Study configuration; defaults to the paper's set-up.
    grid:
        The grid to evaluate on; defaults to the Table 3 GRID5000 topology.
    workers:
        Optional fan-out of the measured sweep over the persistent runtime
        pool.  ``None`` consults the ``REPRO_PRACTICAL_WORKERS`` environment
        variable, then the shared ``REPRO_WORKERS``; ``0``/``1`` run
        in-process.  Results are identical at any worker count.
    engine:
        ``"batched"`` (default) or ``"scalar"``; both produce bit-identical
        results — the scalar path exists as the reference for equivalence
        tests and benchmarks.
    executor:
        Fan-out lane: ``"thread"`` (no shipping — workers read the parent's
        compiled arrays in place), ``"process"``, ``"remote"`` (compiled
        batches framed over sockets to the worker agents named by ``hosts``
        / ``REPRO_HOSTS``, loopback agents otherwise), or ``"auto"``
        (threads for sweeps too small to amortise shipping, processes
        otherwise; naming a ``transport`` pins auto to processes; auto
        never picks remote).  ``None`` consults ``REPRO_EXECUTOR``, then
        defaults to ``"auto"``.  Every lane is bit-identical.
    replicas:
        Number of independent noisy measurements per curve point.  The
        result's ``measured`` columns become replica means and the raw
        per-replica columns ride along (``measured_replicas`` /
        ``measured_std``).  One replica reproduces the historical results
        bit for bit.
    pipeline:
        ``True`` overlaps schedule construction with measured execution
        (requires the batched engine; needs ``workers >= 2`` to actually
        overlap), ``False`` forces the sequential construct-then-measure
        driver, ``None`` (default) pipelines exactly when a pool is in play
        and the engine is batched.  Both drivers are bit-identical.
    transport:
        How batches reach process workers: ``"auto"`` (default), ``"shm"``,
        ``"pickle"``, or — sequential driver only — ``"legacy"`` (the
        pre-runtime dispatch kept as the benchmark baseline).  Ignored on
        the thread lane, which ships nothing.
    chunking:
        ``"adaptive"`` (default) sizes worker chunks from per-task cost and
        observed wall time; ``"fixed"`` keeps the historical task-count
        chunking.  Bit-identical either way.
    pool:
        An explicit :class:`~repro.runtime.pool.StudyPool` /
        :class:`~repro.runtime.pool.ThreadStudyPool` /
        :class:`~repro.runtime.remote.RemoteStudyPool`; defaults to the
        process-wide persistent pool of the chosen lane (a passed pool's
        ``kind`` wins over ``executor``).
    hosts:
        Remote-lane agent addresses (``"host:port,host:port"``); only
        consulted when the remote lane is engaged.  ``None`` falls back to
        ``REPRO_HOSTS``, then to auto-spawned loopback agents.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    # Resolve the fan-out (and implicitly validate the env vars) up front so
    # a bad setting fails before the prediction sweep, not after it.
    worker_count = resolve_workers(workers, PRACTICAL_WORKERS_ENV_VAR)
    pool, worker_count = engage_remote_lane(
        pool, executor, workers, worker_count, hosts, transport
    )
    _check_engine(engine)
    _check_replicas(replicas)
    if pipeline and engine != "batched":
        raise ValueError("pipeline=True requires the batched engine")
    if pipeline and transport == "legacy":
        raise ValueError(
            "pipeline=True cannot ship over transport='legacy' (the legacy "
            "dispatch is the sequential benchmark baseline)"
        )
    use_pipeline = (
        engine == "batched" and worker_count >= 2 and transport != "legacy"
        if pipeline is None
        else bool(pipeline)
    )
    heuristics = instantiate(config.heuristics)
    sizes = list(config.message_sizes)
    predicted = np.empty((len(sizes), len(heuristics)), dtype=float)
    measured = np.empty((replicas, len(sizes), len(heuristics)), dtype=float)
    baseline = (
        np.empty((replicas, len(sizes)), dtype=float)
        if config.include_binomial_baseline
        else None
    )
    network_config = NetworkConfig(noise_sigma=config.noise_sigma, seed=config.seed)

    pipelined: PipelinedExecutor | None = None
    if use_pipeline:
        study_pool = pool
        if study_pool is None and worker_count >= 2:
            # Lane prior: one message per reached node per curve point (the
            # broadcast programs inject ~num_nodes messages each).
            estimated_units = (
                len(sizes)
                * (len(heuristics) + (1 if baseline is not None else 0))
                * replicas
                * grid.num_nodes
            )
            lane = choose_executor(executor, estimated_units, transport=transport)
            study_pool = get_pool(worker_count, kind=lane, hosts=hosts)
        pipelined = PipelinedExecutor(
            grid,
            config=network_config,
            pool=study_pool,
            transport=transport,
            chunking=chunking,
            collect_traces=False,
            workload="bcast",
        )

    # Build the measured sweep size by size.  Each task's noise stream is
    # keyed by (seed, curve label, message size[, replica]): stable under
    # reordering, shuffling and worker fan-out.  The pipelined driver ships
    # each size's batch for measurement as soon as it is built, so the next
    # size's schedules construct while the workers measure this one.
    all_tasks: list[ExecutionTask] = []
    slots: list[tuple[int, int, int | None]] = []
    try:
        for size_index, message_size in enumerate(sizes):
            costs = GridCostCache.for_grid(grid, message_size)
            size_tasks: list[ExecutionTask] = []
            programs: list[tuple[str, object, int | None]] = []
            for heuristic_index, heuristic in enumerate(heuristics):
                schedule = heuristic.schedule(
                    grid, message_size, root=config.root_cluster, costs=costs
                )
                predicted[size_index, heuristic_index] = schedule.makespan
                program = grid_aware_bcast_program(
                    grid, schedule, message_size, local_tree=config.local_tree
                )
                programs.append((heuristic.name, program, heuristic_index))
            if baseline is not None:
                program = binomial_bcast_program(
                    grid,
                    message_size,
                    root_rank=grid.coordinator_rank(config.root_cluster),
                )
                programs.append((BINOMIAL_BASELINE_NAME, program, None))
            for replica in range(replicas):
                for label, program, heuristic_index in programs:
                    size_tasks.append(
                        ExecutionTask(
                            program,
                            noise_seed=_replica_seed(
                                config.seed, label, message_size, replica, replicas
                            ),
                        )
                    )
                    slots.append((replica, size_index, heuristic_index))
            if pipelined is not None:
                pipelined.submit(size_tasks)
            else:
                all_tasks.extend(size_tasks)
    except BaseException:
        # Construction failed mid-sweep: release any batches already shipped
        # to the pool before propagating.
        if pipelined is not None:
            pipelined.abort()
        raise

    if pipelined is not None:
        executions = pipelined.finish()
    else:
        executions = execute_programs(
            grid,
            all_tasks,
            config=network_config,
            collect_traces=False,
            workers=worker_count,
            engine=engine,
            executor=executor,
            transport=transport,
            chunking=chunking,
            pool=pool,
            hosts=hosts,
        )
    for (replica, size_index, heuristic_index), execution in zip(slots, executions):
        if heuristic_index is None:
            baseline[replica, size_index] = execution.makespan
        else:
            measured[replica, size_index, heuristic_index] = execution.makespan
    return PracticalStudyResult(
        config=config,
        heuristic_names=[h.name for h in heuristics],
        message_sizes=sizes,
        predicted=predicted,
        measured=measured.mean(axis=0),
        baseline_measured=None if baseline is None else baseline.mean(axis=0),
        measured_replicas=measured,
        measured_std=measured.std(axis=0),
        baseline_replicas=baseline,
        baseline_std=None if baseline is None else baseline.std(axis=0),
    )


# -- beyond broadcast: the §8 collectives --------------------------------------------


@dataclass
class CollectiveStudyResult:
    """Measured completion times of several strategies for one collective.

    Attributes
    ----------
    collective:
        ``"scatter"`` or ``"alltoall"``.
    config:
        The configuration used (message sizes double as per-rank chunk sizes).
    strategy_names:
        Display names of the measured strategies (baseline first).
    message_sizes:
        Chunk sizes in bytes.
    measured:
        Array ``(len(message_sizes), len(strategy_names))`` of simulator
        makespans.
    """

    collective: str
    config: PracticalStudyConfig
    strategy_names: list[str]
    message_sizes: list[int]
    measured: np.ndarray

    def measured_series(self, strategy_name: str) -> list[float]:
        """Measured completion times of one strategy across chunk sizes."""
        try:
            column = self.strategy_names.index(strategy_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown strategy {strategy_name!r}; available: {self.strategy_names}"
            ) from exc
        return self.measured[:, column].tolist()

    def as_table(self) -> list[dict[str, float]]:
        """Rows of (chunk size, per-strategy time), Figure 6-style."""
        rows: list[dict[str, float]] = []
        for row_index, size in enumerate(self.message_sizes):
            row: dict[str, float] = {"message_size": float(size)}
            for column_index, name in enumerate(self.strategy_names):
                row[name] = float(self.measured[row_index, column_index])
            rows.append(row)
        return rows

    def speedup_over_baseline(self) -> np.ndarray:
        """Baseline time divided by each strategy's time, element-wise."""
        baseline = self.measured[:, :1]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.measured > 0, baseline / self.measured, np.nan)


def _run_collective_study(
    collective: str,
    strategies: "list[tuple[str, object]]",
    config: PracticalStudyConfig,
    grid: Grid,
    workers: int | None,
    engine: str,
    transport: str | None = None,
    executor: str | None = None,
    chunking: str = "adaptive",
    hosts: str | None = None,
    pool=None,
) -> CollectiveStudyResult:
    """Shared driver: one ExecutionTask per (strategy, chunk size).

    ``strategies`` maps display names to ``builder(grid, chunk_size)``
    callables returning a :class:`CommunicationProgram`; the programs' own
    ``initially_active`` metadata (all ranks for all-to-all) flows through the
    batched executor untouched.  The executor lane and chunk sizes resolve in
    :func:`~repro.simulator.batch.execute_programs` from the built programs'
    exact message counts (an all-to-all task is ~20x a scatter task, so
    adaptive chunking matters most here).
    """
    worker_count = resolve_workers(workers, PRACTICAL_WORKERS_ENV_VAR)
    pool, worker_count = engage_remote_lane(
        pool, executor, workers, worker_count, hosts, transport
    )
    _check_engine(engine)
    sizes = list(config.message_sizes)
    tasks: list[ExecutionTask] = []
    for message_size in sizes:
        for name, builder in strategies:
            tasks.append(
                ExecutionTask(
                    builder(grid, message_size),
                    noise_seed=derive_seed(config.seed, collective, name, message_size),
                )
            )
    executions = execute_programs(
        grid,
        tasks,
        config=NetworkConfig(noise_sigma=config.noise_sigma, seed=config.seed),
        collect_traces=False,
        workers=worker_count,
        engine=engine,
        executor=executor,
        transport=transport,
        chunking=chunking,
        pool=pool,
        hosts=hosts,
    )
    measured = np.array(
        [execution.makespan for execution in executions], dtype=float
    ).reshape(len(sizes), len(strategies))
    return CollectiveStudyResult(
        collective=collective,
        config=config,
        strategy_names=[name for name, _ in strategies],
        message_sizes=sizes,
        measured=measured,
    )


def run_scatter_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    workers: int | None = None,
    engine: str = "batched",
    executor: str | None = None,
    transport: str | None = None,
    chunking: str = "adaptive",
    hosts: str | None = None,
    pool=None,
) -> CollectiveStudyResult:
    """Measure the flat scatter against the grid-aware hierarchical scatters.

    The baseline sends every rank its block straight from the root; each
    configured heuristic then drives the inter-cluster order of the
    MagPIe-style aggregated scatter (paper §8's first "future work" pattern).
    ``config.message_sizes`` are interpreted as per-rank chunk sizes.

    ``workers`` defaults from ``REPRO_PRACTICAL_WORKERS`` then the shared
    ``REPRO_WORKERS``; ``executor``
    (``"thread"``/``"process"``/``"remote"``/``"auto"``, default from
    ``REPRO_EXECUTOR``) picks the fan-out lane; ``transport``, ``chunking``,
    ``hosts`` (default from ``REPRO_HOSTS``) and ``pool`` behave as in
    :func:`~repro.simulator.batch.execute_programs`.  Results are
    bit-identical for every combination.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    root_rank = grid.coordinator_rank(config.root_cluster)

    def flat_builder(target_grid: Grid, chunk_size: float):
        return flat_scatter_program(target_grid, chunk_size, root_rank=root_rank)

    def aware_builder(heuristic: SchedulingHeuristic):
        def build(target_grid: Grid, chunk_size: float):
            program, _ = grid_aware_scatter_program(
                target_grid,
                chunk_size,
                heuristic=heuristic,
                root_cluster=config.root_cluster,
            )
            return program

        return build

    strategies: list[tuple[str, object]] = [("Flat scatter", flat_builder)]
    for heuristic in instantiate(config.heuristics):
        strategies.append(
            (f"Grid-aware [{heuristic.name}]", aware_builder(heuristic))
        )
    return _run_collective_study(
        "scatter", strategies, config, grid, workers, engine, transport,
        executor, chunking, hosts, pool,
    )


def run_alltoall_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    workers: int | None = None,
    engine: str = "batched",
    executor: str | None = None,
    transport: str | None = None,
    chunking: str = "adaptive",
    hosts: str | None = None,
    pool=None,
) -> CollectiveStudyResult:
    """Measure the direct all-to-all against the grid-aware aggregated one.

    Every rank starts active (the programs declare it via
    ``initially_active``); the grid-aware strategy trades ``n_i * n_j``
    wide-area messages per cluster pair for a single aggregated one (paper
    §8's second "future work" pattern).  ``config.message_sizes`` are
    per-rank-pair chunk sizes, so keep them modest — the direct strategy
    injects ``n * (n - 1)`` messages per execution.

    ``workers`` defaults from ``REPRO_PRACTICAL_WORKERS`` then the shared
    ``REPRO_WORKERS``; ``executor``
    (``"thread"``/``"process"``/``"remote"``/``"auto"``, default from
    ``REPRO_EXECUTOR``) picks the fan-out lane; ``transport``, ``chunking``,
    ``hosts`` (default from ``REPRO_HOSTS``) and ``pool`` behave as in
    :func:`~repro.simulator.batch.execute_programs`.  Results are
    bit-identical for every combination.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    strategies: list[tuple[str, object]] = [
        ("Direct", lambda target_grid, chunk: direct_alltoall_program(target_grid, chunk)),
        (
            "Grid-aware",
            lambda target_grid, chunk: grid_aware_alltoall_program(target_grid, chunk),
        ),
    ]
    return _run_collective_study(
        "alltoall", strategies, config, grid, workers, engine, transport,
        executor, chunking, hosts, pool,
    )
