"""The practical evaluation on the Table 3 grid (paper §7, Figures 5 and 6).

For every heuristic and every message size the study produces two numbers:

* the **predicted** completion time — the makespan of the heuristic's
  schedule under the pLogP model (Figure 5), computed on the shared
  :class:`~repro.core.costs.GridCostCache` matrices, and
* the **measured** completion time — the makespan observed when the
  corresponding node-level program is executed on the discrete-event
  simulator, optionally with noise (Figure 6).

The grid-unaware binomial broadcast ("Default LAM" in Figure 6) is measured
as well; it has no scheduled prediction, matching the paper, which only plots
it in the measured figure.

The measured sweep runs through the batched engine
(:func:`~repro.simulator.batch.execute_programs`): all (heuristic, size)
programs plus the baseline execute in one pass, optionally fanned out over a
:mod:`multiprocessing` pool (``workers=`` or ``REPRO_PRACTICAL_WORKERS``).
Every curve point owns a noise seed derived from ``(config.seed, curve label,
message size)``, so results are bit-identical regardless of engine, execution
order, heuristic-tuple order or worker count.

Beyond the paper's broadcast figures, the same machinery measures the §8
"future work" collectives: :func:`run_scatter_study` and
:func:`run_alltoall_study` sweep the grid-aware strategies against their flat
/ direct baselines, with the all-to-all programs' ``initially_active`` ranks
taken from the program metadata.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

from repro.core.base import SchedulingHeuristic
from repro.core.costs import GridCostCache
from repro.core.registry import instantiate
from repro.experiments.config import PracticalStudyConfig
from repro.mpi.alltoall import direct_alltoall_program, grid_aware_alltoall_program
from repro.mpi.bcast import binomial_bcast_program, grid_aware_bcast_program
from repro.mpi.scatter import flat_scatter_program, grid_aware_scatter_program
from repro.simulator.batch import ENGINES, ExecutionTask, execute_programs
from repro.simulator.network import NetworkConfig
from repro.topology.grid import Grid
from repro.topology.grid5000 import build_grid5000_topology
from repro.utils.rng import derive_seed

#: Display name of the grid-unaware baseline, as labelled in Figure 6.
BINOMIAL_BASELINE_NAME = "Default LAM"

#: Environment variable consulted for the default measured-sweep worker count.
PRACTICAL_WORKERS_ENV_VAR = "REPRO_PRACTICAL_WORKERS"


def _resolve_workers(workers: int | None) -> int:
    if workers is None:
        raw = os.environ.get(PRACTICAL_WORKERS_ENV_VAR, "").strip()
        if not raw:
            return 0
        try:
            workers = int(raw)
        except ValueError as exc:
            raise ValueError(
                f"{PRACTICAL_WORKERS_ENV_VAR} must be an integer worker count, "
                f"got {raw!r}"
            ) from exc
    return max(0, int(workers))


def _check_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise ValueError(f"engine must be one of {ENGINES}, got {engine!r}")


@dataclass
class PracticalStudyResult:
    """Predicted and measured completion times on a concrete grid.

    Attributes
    ----------
    config:
        The configuration used.
    heuristic_names:
        Display names of the scheduled heuristics (the binomial baseline is
        reported separately).
    message_sizes:
        Payload sizes in bytes (x-axis).
    predicted:
        Array ``(len(message_sizes), len(heuristics))`` of model-predicted
        makespans (Figure 5).
    measured:
        Array of the same shape with simulator-measured makespans (Figure 6).
    baseline_measured:
        Measured makespans of the grid-unaware binomial broadcast, or ``None``
        when the baseline was not requested.
    """

    config: PracticalStudyConfig
    heuristic_names: list[str]
    message_sizes: list[int]
    predicted: np.ndarray
    measured: np.ndarray
    baseline_measured: np.ndarray | None

    def prediction_error(self) -> np.ndarray:
        """Relative error |measured - predicted| / measured, element-wise.

        The paper's §7 claim is that "performance predictions fit with a good
        precision the practical results"; this is the quantity that
        substantiates it (zero-size messages are excluded by callers when
        averaging, as both numbers are sub-millisecond there).
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            error = np.abs(self.measured - self.predicted) / np.where(
                self.measured > 0, self.measured, np.nan
            )
        return error

    def predicted_series(self, heuristic_name: str) -> list[float]:
        """Predicted completion times of one heuristic across message sizes."""
        return self.predicted[:, self._index(heuristic_name)].tolist()

    def measured_series(self, heuristic_name: str) -> list[float]:
        """Measured completion times of one heuristic across message sizes."""
        return self.measured[:, self._index(heuristic_name)].tolist()

    def _index(self, heuristic_name: str) -> int:
        try:
            return self.heuristic_names.index(heuristic_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown heuristic {heuristic_name!r}; available: {self.heuristic_names}"
            ) from exc

    def as_table(self, *, which: str = "measured") -> list[dict[str, float]]:
        """Rows of (message size, per-heuristic time), like the figures' data.

        Parameters
        ----------
        which:
            ``"measured"`` (default) or ``"predicted"``.
        """
        if which == "measured":
            data = self.measured
        elif which == "predicted":
            data = self.predicted
        else:
            raise ValueError("which must be 'measured' or 'predicted'")
        rows: list[dict[str, float]] = []
        for row_index, size in enumerate(self.message_sizes):
            row: dict[str, float] = {"message_size": float(size)}
            for column_index, name in enumerate(self.heuristic_names):
                row[name] = float(data[row_index, column_index])
            if which == "measured" and self.baseline_measured is not None:
                row[BINOMIAL_BASELINE_NAME] = float(self.baseline_measured[row_index])
            rows.append(row)
        return rows


def run_practical_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    workers: int | None = None,
    engine: str = "batched",
) -> PracticalStudyResult:
    """Run the Figure 5 / Figure 6 experiment.

    Parameters
    ----------
    config:
        Study configuration; defaults to the paper's set-up.
    grid:
        The grid to evaluate on; defaults to the Table 3 GRID5000 topology.
    workers:
        Optional :mod:`multiprocessing` fan-out of the measured sweep.
        ``None`` consults ``REPRO_PRACTICAL_WORKERS``; ``0``/``1`` run
        in-process.  Results are identical at any worker count.
    engine:
        ``"batched"`` (default) or ``"scalar"``; both produce bit-identical
        results — the scalar path exists as the reference for equivalence
        tests and benchmarks.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    # Resolve the fan-out (and implicitly validate the env var) up front so a
    # bad setting fails before the prediction sweep, not after it.
    worker_count = _resolve_workers(workers)
    _check_engine(engine)
    heuristics = instantiate(config.heuristics)
    sizes = list(config.message_sizes)
    predicted = np.empty((len(sizes), len(heuristics)), dtype=float)
    baseline = (
        np.empty(len(sizes), dtype=float) if config.include_binomial_baseline else None
    )

    # Build the whole measured sweep as one task batch.  Each task's noise
    # stream is keyed by (seed, curve label, message size): stable under
    # reordering, shuffling and worker fan-out.
    tasks: list[ExecutionTask] = []
    slots: list[tuple[int, int | None]] = []
    for size_index, message_size in enumerate(sizes):
        costs = GridCostCache.for_grid(grid, message_size)
        for heuristic_index, heuristic in enumerate(heuristics):
            schedule = heuristic.schedule(
                grid, message_size, root=config.root_cluster, costs=costs
            )
            predicted[size_index, heuristic_index] = schedule.makespan
            program = grid_aware_bcast_program(
                grid, schedule, message_size, local_tree=config.local_tree
            )
            tasks.append(
                ExecutionTask(
                    program,
                    noise_seed=derive_seed(config.seed, heuristic.name, message_size),
                )
            )
            slots.append((size_index, heuristic_index))
        if baseline is not None:
            program = binomial_bcast_program(
                grid,
                message_size,
                root_rank=grid.coordinator_rank(config.root_cluster),
            )
            tasks.append(
                ExecutionTask(
                    program,
                    noise_seed=derive_seed(
                        config.seed, BINOMIAL_BASELINE_NAME, message_size
                    ),
                )
            )
            slots.append((size_index, None))

    executions = execute_programs(
        grid,
        tasks,
        config=NetworkConfig(noise_sigma=config.noise_sigma, seed=config.seed),
        collect_traces=False,
        workers=worker_count,
        engine=engine,
    )
    measured = np.empty_like(predicted)
    for (size_index, heuristic_index), execution in zip(slots, executions):
        if heuristic_index is None:
            baseline[size_index] = execution.makespan
        else:
            measured[size_index, heuristic_index] = execution.makespan
    return PracticalStudyResult(
        config=config,
        heuristic_names=[h.name for h in heuristics],
        message_sizes=sizes,
        predicted=predicted,
        measured=measured,
        baseline_measured=baseline,
    )


# -- beyond broadcast: the §8 collectives --------------------------------------------


@dataclass
class CollectiveStudyResult:
    """Measured completion times of several strategies for one collective.

    Attributes
    ----------
    collective:
        ``"scatter"`` or ``"alltoall"``.
    config:
        The configuration used (message sizes double as per-rank chunk sizes).
    strategy_names:
        Display names of the measured strategies (baseline first).
    message_sizes:
        Chunk sizes in bytes.
    measured:
        Array ``(len(message_sizes), len(strategy_names))`` of simulator
        makespans.
    """

    collective: str
    config: PracticalStudyConfig
    strategy_names: list[str]
    message_sizes: list[int]
    measured: np.ndarray

    def measured_series(self, strategy_name: str) -> list[float]:
        """Measured completion times of one strategy across chunk sizes."""
        try:
            column = self.strategy_names.index(strategy_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown strategy {strategy_name!r}; available: {self.strategy_names}"
            ) from exc
        return self.measured[:, column].tolist()

    def as_table(self) -> list[dict[str, float]]:
        """Rows of (chunk size, per-strategy time), Figure 6-style."""
        rows: list[dict[str, float]] = []
        for row_index, size in enumerate(self.message_sizes):
            row: dict[str, float] = {"message_size": float(size)}
            for column_index, name in enumerate(self.strategy_names):
                row[name] = float(self.measured[row_index, column_index])
            rows.append(row)
        return rows

    def speedup_over_baseline(self) -> np.ndarray:
        """Baseline time divided by each strategy's time, element-wise."""
        baseline = self.measured[:, :1]
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.where(self.measured > 0, baseline / self.measured, np.nan)


def _run_collective_study(
    collective: str,
    strategies: "list[tuple[str, object]]",
    config: PracticalStudyConfig,
    grid: Grid,
    workers: int | None,
    engine: str,
) -> CollectiveStudyResult:
    """Shared driver: one ExecutionTask per (strategy, chunk size).

    ``strategies`` maps display names to ``builder(grid, chunk_size)``
    callables returning a :class:`CommunicationProgram`; the programs' own
    ``initially_active`` metadata (all ranks for all-to-all) flows through the
    batched executor untouched.
    """
    worker_count = _resolve_workers(workers)
    _check_engine(engine)
    sizes = list(config.message_sizes)
    tasks: list[ExecutionTask] = []
    for message_size in sizes:
        for name, builder in strategies:
            tasks.append(
                ExecutionTask(
                    builder(grid, message_size),
                    noise_seed=derive_seed(config.seed, collective, name, message_size),
                )
            )
    executions = execute_programs(
        grid,
        tasks,
        config=NetworkConfig(noise_sigma=config.noise_sigma, seed=config.seed),
        collect_traces=False,
        workers=worker_count,
        engine=engine,
    )
    measured = np.array(
        [execution.makespan for execution in executions], dtype=float
    ).reshape(len(sizes), len(strategies))
    return CollectiveStudyResult(
        collective=collective,
        config=config,
        strategy_names=[name for name, _ in strategies],
        message_sizes=sizes,
        measured=measured,
    )


def run_scatter_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    workers: int | None = None,
    engine: str = "batched",
) -> CollectiveStudyResult:
    """Measure the flat scatter against the grid-aware hierarchical scatters.

    The baseline sends every rank its block straight from the root; each
    configured heuristic then drives the inter-cluster order of the
    MagPIe-style aggregated scatter (paper §8's first "future work" pattern).
    ``config.message_sizes`` are interpreted as per-rank chunk sizes.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    root_rank = grid.coordinator_rank(config.root_cluster)

    def flat_builder(target_grid: Grid, chunk_size: float):
        return flat_scatter_program(target_grid, chunk_size, root_rank=root_rank)

    def aware_builder(heuristic: SchedulingHeuristic):
        def build(target_grid: Grid, chunk_size: float):
            program, _ = grid_aware_scatter_program(
                target_grid,
                chunk_size,
                heuristic=heuristic,
                root_cluster=config.root_cluster,
            )
            return program

        return build

    strategies: list[tuple[str, object]] = [("Flat scatter", flat_builder)]
    for heuristic in instantiate(config.heuristics):
        strategies.append(
            (f"Grid-aware [{heuristic.name}]", aware_builder(heuristic))
        )
    return _run_collective_study(
        "scatter", strategies, config, grid, workers, engine
    )


def run_alltoall_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
    workers: int | None = None,
    engine: str = "batched",
) -> CollectiveStudyResult:
    """Measure the direct all-to-all against the grid-aware aggregated one.

    Every rank starts active (the programs declare it via
    ``initially_active``); the grid-aware strategy trades ``n_i * n_j``
    wide-area messages per cluster pair for a single aggregated one (paper
    §8's second "future work" pattern).  ``config.message_sizes`` are
    per-rank-pair chunk sizes, so keep them modest — the direct strategy
    injects ``n * (n - 1)`` messages per execution.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    strategies: list[tuple[str, object]] = [
        ("Direct", lambda target_grid, chunk: direct_alltoall_program(target_grid, chunk)),
        (
            "Grid-aware",
            lambda target_grid, chunk: grid_aware_alltoall_program(target_grid, chunk),
        ),
    ]
    return _run_collective_study(
        "alltoall", strategies, config, grid, workers, engine
    )
