"""The practical evaluation on the Table 3 grid (paper §7, Figures 5 and 6).

For every heuristic and every message size the study produces two numbers:

* the **predicted** completion time — the makespan of the heuristic's
  schedule under the pLogP model (Figure 5), and
* the **measured** completion time — the makespan observed when the
  corresponding node-level program is executed on the discrete-event
  simulator, optionally with noise (Figure 6).

The grid-unaware binomial broadcast ("Default LAM" in Figure 6) is measured
as well; it has no scheduled prediction, matching the paper, which only plots
it in the measured figure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.registry import instantiate
from repro.experiments.config import PracticalStudyConfig
from repro.mpi.bcast import binomial_bcast_program, grid_aware_bcast_program
from repro.simulator.execution import execute_program
from repro.simulator.network import NetworkConfig, SimulatedNetwork
from repro.topology.grid import Grid
from repro.topology.grid5000 import build_grid5000_topology

#: Display name of the grid-unaware baseline, as labelled in Figure 6.
BINOMIAL_BASELINE_NAME = "Default LAM"


@dataclass
class PracticalStudyResult:
    """Predicted and measured completion times on a concrete grid.

    Attributes
    ----------
    config:
        The configuration used.
    heuristic_names:
        Display names of the scheduled heuristics (the binomial baseline is
        reported separately).
    message_sizes:
        Payload sizes in bytes (x-axis).
    predicted:
        Array ``(len(message_sizes), len(heuristics))`` of model-predicted
        makespans (Figure 5).
    measured:
        Array of the same shape with simulator-measured makespans (Figure 6).
    baseline_measured:
        Measured makespans of the grid-unaware binomial broadcast, or ``None``
        when the baseline was not requested.
    """

    config: PracticalStudyConfig
    heuristic_names: list[str]
    message_sizes: list[int]
    predicted: np.ndarray
    measured: np.ndarray
    baseline_measured: np.ndarray | None

    def prediction_error(self) -> np.ndarray:
        """Relative error |measured - predicted| / measured, element-wise.

        The paper's §7 claim is that "performance predictions fit with a good
        precision the practical results"; this is the quantity that
        substantiates it (zero-size messages are excluded by callers when
        averaging, as both numbers are sub-millisecond there).
        """
        with np.errstate(divide="ignore", invalid="ignore"):
            error = np.abs(self.measured - self.predicted) / np.where(
                self.measured > 0, self.measured, np.nan
            )
        return error

    def predicted_series(self, heuristic_name: str) -> list[float]:
        """Predicted completion times of one heuristic across message sizes."""
        return self.predicted[:, self._index(heuristic_name)].tolist()

    def measured_series(self, heuristic_name: str) -> list[float]:
        """Measured completion times of one heuristic across message sizes."""
        return self.measured[:, self._index(heuristic_name)].tolist()

    def _index(self, heuristic_name: str) -> int:
        try:
            return self.heuristic_names.index(heuristic_name)
        except ValueError as exc:
            raise ValueError(
                f"unknown heuristic {heuristic_name!r}; available: {self.heuristic_names}"
            ) from exc

    def as_table(self, *, which: str = "measured") -> list[dict[str, float]]:
        """Rows of (message size, per-heuristic time), like the figures' data.

        Parameters
        ----------
        which:
            ``"measured"`` (default) or ``"predicted"``.
        """
        if which == "measured":
            data = self.measured
        elif which == "predicted":
            data = self.predicted
        else:
            raise ValueError("which must be 'measured' or 'predicted'")
        rows: list[dict[str, float]] = []
        for row_index, size in enumerate(self.message_sizes):
            row: dict[str, float] = {"message_size": float(size)}
            for column_index, name in enumerate(self.heuristic_names):
                row[name] = float(data[row_index, column_index])
            if which == "measured" and self.baseline_measured is not None:
                row[BINOMIAL_BASELINE_NAME] = float(self.baseline_measured[row_index])
            rows.append(row)
        return rows


def run_practical_study(
    config: PracticalStudyConfig | None = None,
    *,
    grid: Grid | None = None,
) -> PracticalStudyResult:
    """Run the Figure 5 / Figure 6 experiment.

    Parameters
    ----------
    config:
        Study configuration; defaults to the paper's set-up.
    grid:
        The grid to evaluate on; defaults to the Table 3 GRID5000 topology.
    """
    config = config if config is not None else PracticalStudyConfig()
    grid = grid if grid is not None else build_grid5000_topology()
    heuristics = instantiate(config.heuristics)
    network = SimulatedNetwork(
        grid, NetworkConfig(noise_sigma=config.noise_sigma, seed=config.seed)
    )
    sizes = list(config.message_sizes)
    predicted = np.empty((len(sizes), len(heuristics)), dtype=float)
    measured = np.empty_like(predicted)
    baseline = (
        np.empty(len(sizes), dtype=float) if config.include_binomial_baseline else None
    )
    for size_index, message_size in enumerate(sizes):
        for heuristic_index, heuristic in enumerate(heuristics):
            schedule = heuristic.schedule(grid, message_size, root=config.root_cluster)
            predicted[size_index, heuristic_index] = schedule.makespan
            program = grid_aware_bcast_program(
                grid, schedule, message_size, local_tree=config.local_tree
            )
            execution = execute_program(network, program)
            measured[size_index, heuristic_index] = execution.makespan
        if baseline is not None:
            program = binomial_bcast_program(
                grid,
                message_size,
                root_rank=grid.coordinator_rank(config.root_cluster),
            )
            execution = execute_program(network, program)
            baseline[size_index] = execution.makespan
    return PracticalStudyResult(
        config=config,
        heuristic_names=[h.name for h in heuristics],
        message_sizes=sizes,
        predicted=predicted,
        measured=measured,
        baseline_measured=baseline,
    )
