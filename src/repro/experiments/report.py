"""Plain-text rendering of experiment results.

The benchmarks print the same rows/series the paper's figures plot; these
helpers format them as aligned ASCII tables so the console output of
``pytest benchmarks/ --benchmark-only`` doubles as the data behind
EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import Sequence


def _format_cell(value: float, *, precision: int = 3) -> str:
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return f"{int(value)}"
    return f"{value:.{precision}f}"


def render_table(
    rows: Sequence[dict[str, float]],
    *,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render a list of homogeneous dict rows as an aligned ASCII table."""
    if not rows:
        return title
    columns = list(rows[0].keys())
    for row in rows:
        if list(row.keys()) != columns:
            raise ValueError("all rows must share the same columns, in the same order")
    rendered_rows = [
        [_format_cell(float(row[column]), precision=precision) for column in columns]
        for row in rows
    ]
    widths = [
        max(len(column), *(len(rendered[i]) for rendered in rendered_rows))
        for i, column in enumerate(columns)
    ]
    lines: list[str] = []
    if title:
        lines.append(title)
    header = "  ".join(column.rjust(widths[i]) for i, column in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for rendered in rendered_rows:
        lines.append("  ".join(cell.rjust(widths[i]) for i, cell in enumerate(rendered)))
    return "\n".join(lines)


def render_series_table(
    x_label: str,
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    *,
    title: str = "",
    precision: int = 3,
) -> str:
    """Render named series sharing one x-axis (the shape of Figures 1–3, 5, 6)."""
    lengths = {name: len(values) for name, values in series.items()}
    if any(length != len(x_values) for length in lengths.values()):
        raise ValueError(
            f"series lengths {lengths} do not all match the x-axis length {len(x_values)}"
        )
    rows = []
    for index, x in enumerate(x_values):
        row: dict[str, float] = {x_label: float(x)}
        for name, values in series.items():
            row[name] = float(values[index])
        rows.append(row)
    return render_table(rows, title=title, precision=precision)


def render_hit_rate_table(
    cluster_counts: Sequence[int],
    hit_counts: dict[str, Sequence[int]],
    *,
    iterations: int,
    title: str = "Hit rate",
) -> str:
    """Render hit counts in the style of Figure 4 (counts out of N iterations)."""
    rows = []
    for index, count in enumerate(cluster_counts):
        row: dict[str, float] = {"clusters": float(count)}
        for name, counts in hit_counts.items():
            row[name] = float(counts[index])
        rows.append(row)
    return render_table(
        rows, title=f"{title} (out of {iterations} iterations)", precision=0
    )
