"""Experiment configurations.

The defaults encode the paper's set-ups:

* the Monte-Carlo study broadcasts a **1 MB** message on grids whose pLogP
  parameters are drawn from **Table 2**, averaging 10 000 iterations
  (``iterations`` is configurable because 10 000 pure-Python iterations at 50
  clusters take a while; a few hundred already reproduce the figure shapes);
* Figure 1 sweeps 2–10 clusters, Figures 2–4 sweep 5–50 clusters in steps of
  5;
* the practical study sweeps message sizes from 0 to 4.5 MB on the Table 3
  grid, like the x-axes of Figures 5 and 6.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.registry import ECEF_FAMILY, PAPER_HEURISTICS
from repro.topology.generators import PAPER_PARAMETER_RANGES, ParameterRanges
from repro.utils.rng import DEFAULT_SEED
from repro.utils.units import mib_to_bytes

#: Message size of the simulation study: "1 MB Broadcast in a Grid Environment".
PAPER_MESSAGE_SIZE: int = mib_to_bytes(1.0)

#: Cluster counts of Figure 1 (2 to 10 clusters).
FIGURE1_CLUSTER_COUNTS: tuple[int, ...] = tuple(range(2, 11))

#: Cluster counts of Figures 2, 3 and 4 (5 to 50 clusters, step 5).
FIGURE2_CLUSTER_COUNTS: tuple[int, ...] = tuple(range(5, 51, 5))

#: Number of iterations used by the paper.
PAPER_ITERATIONS: int = 10_000

#: Message sizes of Figures 5 and 6 (0 to 4.5 MB, in 512 KB steps).
PRACTICAL_MESSAGE_SIZES: tuple[int, ...] = tuple(
    int(round(step * 512 * 1024)) for step in range(0, 10)
)


@dataclass(frozen=True)
class SimulationStudyConfig:
    """Configuration of the Monte-Carlo simulation study (Figures 1–4).

    Attributes
    ----------
    cluster_counts:
        Grid sizes to sweep.
    iterations:
        Independent random grids per cluster count.
    message_size:
        Broadcast payload in bytes (1 MiB in the paper).
    heuristics:
        Registry keys of the heuristics to compare.
    ranges:
        Table 2 sampling ranges.
    seed:
        Root seed of the random streams (one child stream per iteration).
    root_cluster:
        Index of the broadcast root in every generated grid.
    """

    cluster_counts: tuple[int, ...] = FIGURE1_CLUSTER_COUNTS
    iterations: int = 1_000
    message_size: int = PAPER_MESSAGE_SIZE
    heuristics: tuple[str, ...] = PAPER_HEURISTICS
    ranges: ParameterRanges = PAPER_PARAMETER_RANGES
    seed: int = DEFAULT_SEED
    root_cluster: int = 0

    def __post_init__(self) -> None:
        if not self.cluster_counts:
            raise ValueError("cluster_counts must not be empty")
        if any(count < 1 for count in self.cluster_counts):
            raise ValueError("cluster counts must be >= 1")
        if self.iterations < 1:
            raise ValueError("iterations must be >= 1")
        if self.message_size < 0:
            raise ValueError("message_size must be non-negative")
        if not self.heuristics:
            raise ValueError("heuristics must not be empty")

    # -- canonical figure set-ups -----------------------------------------------------

    @classmethod
    def figure1(cls, *, iterations: int = 1_000, seed: int = DEFAULT_SEED) -> "SimulationStudyConfig":
        """Figure 1: all seven heuristics, 2–10 clusters."""
        return cls(
            cluster_counts=FIGURE1_CLUSTER_COUNTS,
            iterations=iterations,
            heuristics=PAPER_HEURISTICS,
            seed=seed,
        )

    @classmethod
    def figure2(cls, *, iterations: int = 300, seed: int = DEFAULT_SEED) -> "SimulationStudyConfig":
        """Figure 2: all seven heuristics, 5–50 clusters."""
        return cls(
            cluster_counts=FIGURE2_CLUSTER_COUNTS,
            iterations=iterations,
            heuristics=PAPER_HEURISTICS,
            seed=seed,
        )

    @classmethod
    def figure3(cls, *, iterations: int = 300, seed: int = DEFAULT_SEED) -> "SimulationStudyConfig":
        """Figure 3: the ECEF family only, 5–50 clusters."""
        return cls(
            cluster_counts=FIGURE2_CLUSTER_COUNTS,
            iterations=iterations,
            heuristics=ECEF_FAMILY,
            seed=seed,
        )

    @classmethod
    def figure4(cls, *, iterations: int = 300, seed: int = DEFAULT_SEED) -> "SimulationStudyConfig":
        """Figure 4: hit rate of the ECEF family, 5–50 clusters."""
        return cls.figure3(iterations=iterations, seed=seed)


@dataclass(frozen=True)
class PracticalStudyConfig:
    """Configuration of the practical (Table 3 grid) study (Figures 5 and 6).

    Attributes
    ----------
    message_sizes:
        Payload sizes in bytes (x-axis of Figures 5/6).
    heuristics:
        Heuristic registry keys to evaluate.
    include_binomial_baseline:
        Also run the grid-unaware binomial broadcast (the "Default LAM"
        curve of Figure 6).
    root_cluster:
        Broadcast root.
    noise_sigma:
        Log-normal noise applied by the simulator to the "measured" runs.
    seed:
        Simulator noise seed.
    local_tree:
        Intra-cluster broadcast tree shape.
    """

    message_sizes: tuple[int, ...] = PRACTICAL_MESSAGE_SIZES
    heuristics: tuple[str, ...] = PAPER_HEURISTICS
    include_binomial_baseline: bool = True
    root_cluster: int = 0
    noise_sigma: float = 0.03
    seed: int = DEFAULT_SEED
    local_tree: str = "binomial"

    def __post_init__(self) -> None:
        if not self.message_sizes:
            raise ValueError("message_sizes must not be empty")
        if any(size < 0 for size in self.message_sizes):
            raise ValueError("message sizes must be non-negative")
        if not self.heuristics:
            raise ValueError("heuristics must not be empty")
        if self.noise_sigma < 0:
            raise ValueError("noise_sigma must be non-negative")
