"""Experiment harness regenerating every table and figure of the paper.

* :mod:`~repro.experiments.config` — experiment configurations, including the
  paper's Table 2 parameter ranges and the canonical figure set-ups.
* :mod:`~repro.experiments.simulation_study` — the Monte-Carlo study behind
  Figures 1, 2 and 3 (average completion time of every heuristic versus the
  number of clusters).
* :mod:`~repro.experiments.hit_rate` — the hit-rate analysis of Figure 4
  (how often each ECEF-like heuristic matches the per-iteration global
  minimum).
* :mod:`~repro.experiments.practical_study` — the Table 3 / Figure 5 /
  Figure 6 experiment: predicted and simulator-measured completion times on
  the 88-machine GRID5000 grid as a function of the message size (with
  first-class noise replicas and a pipelined worker driver).
* :mod:`~repro.experiments.chained_study` — warm-network pipelines of
  back-to-back collectives measured against their barrier-separated
  baselines.
* :mod:`~repro.experiments.gossip_study` — the tree-vs-gossip dissemination
  study (rounds, traffic, robustness under churn and noise) over the
  :mod:`repro.gossip` round engines.
* :mod:`~repro.experiments.report` — plain-text rendering of result series in
  the same rows/columns as the paper's artefacts.
"""

from repro.experiments.config import (
    FIGURE1_CLUSTER_COUNTS,
    FIGURE2_CLUSTER_COUNTS,
    PAPER_MESSAGE_SIZE,
    PRACTICAL_MESSAGE_SIZES,
    SimulationStudyConfig,
    PracticalStudyConfig,
)
from repro.experiments.simulation_study import (
    SimulationStudyResult,
    run_simulation_study,
)
from repro.experiments.hit_rate import HitRateResult, run_hit_rate_study
from repro.experiments.chained_study import (
    CHAIN_COLLECTIVES,
    ChainedStudyResult,
    run_chained_study,
)
from repro.experiments.practical_study import (
    CollectiveStudyResult,
    PracticalStudyResult,
    run_alltoall_study,
    run_practical_study,
    run_scatter_study,
)
from repro.experiments.gossip_study import (
    GossipStudyConfig,
    GossipStudyResult,
    run_gossip_study,
)
from repro.experiments.report import render_series_table, render_hit_rate_table

__all__ = [
    "FIGURE1_CLUSTER_COUNTS",
    "FIGURE2_CLUSTER_COUNTS",
    "PAPER_MESSAGE_SIZE",
    "PRACTICAL_MESSAGE_SIZES",
    "SimulationStudyConfig",
    "PracticalStudyConfig",
    "SimulationStudyResult",
    "run_simulation_study",
    "HitRateResult",
    "run_hit_rate_study",
    "CHAIN_COLLECTIVES",
    "ChainedStudyResult",
    "run_chained_study",
    "GossipStudyConfig",
    "GossipStudyResult",
    "run_gossip_study",
    "CollectiveStudyResult",
    "PracticalStudyResult",
    "run_practical_study",
    "run_alltoall_study",
    "run_scatter_study",
    "render_series_table",
    "render_hit_rate_table",
]
