"""Simulated pLogP parameter acquisition.

The paper feeds its models with pLogP parameters "obtained with the method
described in [Kielmann et al. 2000]": a short ping-pong exchange estimates the
latency ``L`` while message trains of increasing size estimate the gap
``g(m)``.  We obviously cannot run that tool against GRID5000, so this module
re-implements the *procedure* against any point-to-point timing oracle — in
practice either an analytic :class:`~repro.model.plogp.PLogPParameters`
instance (for testing the fitting code against a known ground truth) or the
discrete-event simulator of :mod:`repro.simulator` (the stand-in for the real
testbed).

The oracle contract is a single callable::

    round_trip_time(message_size: float) -> float

returning the time for a message of ``message_size`` bytes to go from the
probing node to its peer and for a zero-byte acknowledgement to come back,
exactly like the ping-pong used by the original logp_mpi tool.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.model.plogp import GapFunction, PLogPParameters
from repro.utils.validation import check_non_negative, check_positive

#: Message sizes (bytes) probed by default, mimicking logp_mpi's geometric sweep.
DEFAULT_PROBE_SIZES: tuple[int, ...] = (
    0,
    1_024,
    4_096,
    16_384,
    65_536,
    262_144,
    1_048_576,
    4_194_304,
)

RoundTripOracle = Callable[[float], float]


@dataclass(frozen=True)
class MeasuredParameters:
    """Result of one measurement campaign on a single link.

    Attributes
    ----------
    latency:
        Estimated one-way latency ``L`` in seconds.
    gap:
        Fitted gap function ``g(m)``.
    probe_sizes:
        Message sizes that were probed (bytes).
    raw_round_trips:
        Raw round-trip times observed for each probe size (seconds).
    """

    latency: float
    gap: GapFunction
    probe_sizes: tuple[float, ...]
    raw_round_trips: tuple[float, ...]

    def as_plogp(self, num_procs: int = 2) -> PLogPParameters:
        """Package the fit as a :class:`PLogPParameters` bundle."""
        return PLogPParameters(latency=self.latency, gap=self.gap, num_procs=num_procs)


def fit_latency(zero_byte_round_trip: float) -> float:
    """Estimate the one-way latency from a zero-byte ping-pong.

    Following the LogP convention the one-way latency is half the zero-byte
    round trip (the zero-byte gap is folded into it; for WAN links the gap of
    an empty message is negligible compared to the propagation delay, which is
    the regime the paper's Table 3 latencies describe).
    """
    check_non_negative(zero_byte_round_trip, "zero_byte_round_trip")
    return zero_byte_round_trip / 2.0


def fit_gap_function(
    probe_sizes: Sequence[float],
    round_trips: Sequence[float],
    latency: float,
) -> GapFunction:
    """Fit ``g(m)`` from round-trip measurements.

    For each probed size ``m`` the ping carried ``m`` bytes and the pong was
    empty, so ``rtt(m) = g(m) + L  +  g(0) + L``.  With ``g(0) + 2 L``
    estimated by the zero-byte round trip, the per-size gap is::

        g(m) = rtt(m) - rtt(0) + g(0)

    and we conservatively approximate ``g(0)`` by the residual of the zero
    byte exchange after removing two latencies.  Gaps are clamped to be
    non-negative and non-decreasing so that the result is always a valid
    :class:`GapFunction`, even in the presence of measurement noise.
    """
    if len(probe_sizes) != len(round_trips):
        raise ValueError("probe_sizes and round_trips must have the same length")
    if len(probe_sizes) == 0:
        raise ValueError("need at least one probe")
    check_non_negative(latency, "latency")
    pairs = sorted(zip((float(s) for s in probe_sizes), (float(r) for r in round_trips)))
    base_rtt = pairs[0][1]
    gap_zero = max(0.0, base_rtt - 2.0 * latency)
    points: list[tuple[float, float]] = []
    previous_gap = 0.0
    for size, rtt in pairs:
        gap = max(0.0, rtt - base_rtt + gap_zero)
        gap = max(gap, previous_gap)  # enforce monotonicity against noise
        points.append((size, gap))
        previous_gap = gap
    return GapFunction.from_points(points)


@dataclass
class MeasurementProcedure:
    """Kielmann-style pLogP measurement against a round-trip oracle.

    Parameters
    ----------
    oracle:
        Callable returning the round-trip time of a ping of ``m`` bytes
        followed by an empty pong.
    probe_sizes:
        Message sizes to probe.  Must contain 0 (needed for the latency
        estimate); it is added automatically if missing.
    repetitions:
        Number of times each probe is repeated; the minimum observation is
        kept, like the original tool, to filter out transient noise.
    """

    oracle: RoundTripOracle
    probe_sizes: Sequence[float] = field(default=DEFAULT_PROBE_SIZES)
    repetitions: int = 3

    def __post_init__(self) -> None:
        if not callable(self.oracle):
            raise TypeError("oracle must be callable")
        check_positive(self.repetitions, "repetitions")
        sizes = sorted({float(s) for s in self.probe_sizes})
        if not sizes or sizes[0] != 0.0:
            sizes = [0.0] + [s for s in sizes if s != 0.0]
        for size in sizes:
            check_non_negative(size, "probe size")
        self.probe_sizes = tuple(sizes)

    def run(self) -> MeasuredParameters:
        """Execute the measurement campaign and fit (L, g(m))."""
        observations: list[float] = []
        for size in self.probe_sizes:
            best = float("inf")
            for _ in range(int(self.repetitions)):
                rtt = float(self.oracle(size))
                if rtt < 0:
                    raise ValueError(f"oracle returned a negative round trip for size {size}")
                best = min(best, rtt)
            observations.append(best)
        latency = fit_latency(observations[0])
        gap = fit_gap_function(self.probe_sizes, observations, latency)
        return MeasuredParameters(
            latency=latency,
            gap=gap,
            probe_sizes=tuple(self.probe_sizes),
            raw_round_trips=tuple(observations),
        )


def analytic_round_trip_oracle(params: PLogPParameters) -> RoundTripOracle:
    """Build a noise-free oracle from known pLogP parameters.

    The returned callable reports ``g(m) + L + g(0) + L`` for a ping of size
    ``m``, which is the round trip an ideal pLogP link would exhibit.  Used to
    validate that :class:`MeasurementProcedure` recovers the ground truth.
    """

    def oracle(message_size: float) -> float:
        return (
            params.gap(message_size)
            + params.latency
            + params.gap(0.0)
            + params.latency
        )

    return oracle
