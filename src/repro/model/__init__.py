"""The pLogP performance model.

The paper predicts every communication cost with the *parameterised LogP*
model (pLogP, Kielmann et al. 2001):

* ``L`` -- end-to-end latency of a link,
* ``g(m)`` -- the *gap*, i.e. the minimum time between two consecutive message
  transmissions of size ``m`` (it captures the sender occupancy and the
  bandwidth term), and
* ``P`` -- the number of processes.

This sub-package provides:

* :class:`~repro.model.plogp.GapFunction` -- a piecewise-linear, monotone
  model of ``g(m)`` built either from measured points or from a simple
  ``overhead + size / bandwidth`` law,
* :class:`~repro.model.plogp.PLogPParameters` -- the (L, g, P) bundle for one
  link or one cluster interconnect,
* :mod:`~repro.model.prediction` -- completion-time prediction of
  intra-cluster broadcast algorithms under pLogP (the ``T_i`` values fed to
  the grid-aware heuristics), and
* :mod:`~repro.model.measurement` -- a simulated version of Kielmann's
  parameter-acquisition procedure (ping-pong for L, message-train saturation
  for g(m)) that runs against any point-to-point timing oracle, in particular
  against the discrete-event simulator of :mod:`repro.simulator`.
"""

from repro.model.plogp import GapFunction, PLogPParameters, point_to_point_time
from repro.model.prediction import (
    predict_binomial_broadcast,
    predict_broadcast_time,
    predict_chain_broadcast,
    predict_flat_broadcast,
    predict_pipeline_broadcast,
)
from repro.model.measurement import (
    MeasurementProcedure,
    MeasuredParameters,
    fit_gap_function,
    fit_latency,
)

__all__ = [
    "GapFunction",
    "PLogPParameters",
    "point_to_point_time",
    "predict_binomial_broadcast",
    "predict_broadcast_time",
    "predict_chain_broadcast",
    "predict_flat_broadcast",
    "predict_pipeline_broadcast",
    "MeasurementProcedure",
    "MeasuredParameters",
    "fit_gap_function",
    "fit_latency",
]
