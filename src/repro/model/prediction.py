"""Completion-time prediction of intra-cluster broadcasts under pLogP.

The grid-aware heuristics of the paper need, for every cluster ``i``, the
time ``T_i`` its coordinator will take to broadcast the message to the other
local processes.  The companion papers of the authors (Barchet-Estefanel &
Mounié, Euro PVM/MPI 2004) predict this time by walking the broadcast tree
with the pLogP cost model; this module implements those predictions for the
classic tree shapes.

All predictions share the same timing rules:

* a node that starts sending a message of size ``m`` at time ``t`` is busy
  until ``t + g(m)`` and may then start its next send;
* the destination holds the message at ``t + g(m) + L``;
* the root holds the message at time 0.

The returned value is the time at which the **last** process holds the
message, i.e. the broadcast makespan inside the cluster.
"""

from __future__ import annotations

import math
from typing import Callable

from repro.model.plogp import PLogPParameters
from repro.utils.validation import check_non_negative


def predict_flat_broadcast(params: PLogPParameters, message_size: float) -> float:
    """Flat-tree broadcast: the root sends to the ``P - 1`` others in turn.

    The ``k``-th destination (1-based) receives at ``k * g(m) + L``, so the
    makespan is ``(P - 1) * g(m) + L``.
    """
    check_non_negative(message_size, "message_size")
    p = params.num_procs
    if p <= 1:
        return 0.0
    g = params.gap(message_size)
    return (p - 1) * g + params.latency


def predict_chain_broadcast(params: PLogPParameters, message_size: float) -> float:
    """Chain (linear pipeline without segmentation) broadcast.

    Each process forwards the full message to the next one, so the makespan is
    ``(P - 1) * (g(m) + L)``.
    """
    check_non_negative(message_size, "message_size")
    p = params.num_procs
    if p <= 1:
        return 0.0
    return (p - 1) * (params.gap(message_size) + params.latency)


def predict_binomial_broadcast(params: PLogPParameters, message_size: float) -> float:
    """Binomial-tree broadcast makespan under pLogP.

    The prediction walks the binomial tree explicitly: in round ``r`` every
    process that already holds the message sends it to a new partner.  A
    process that received the message at time ``t`` performs its own sends
    back-to-back, each occupying it for ``g(m)`` and delivering ``L`` later.
    For ``P`` processes there are ``ceil(log2 P)`` rounds and the makespan is
    the largest delivery time over all processes.
    """
    check_non_negative(message_size, "message_size")
    p = params.num_procs
    if p <= 1:
        return 0.0
    g = params.gap(message_size)
    latency = params.latency

    # ready_times[k] is the time at which the k-th informed process (in the
    # order they join the broadcast) holds the message and can start sending.
    ready_times = [0.0]
    # next_send_at[k] tracks when process k may inject its next message.
    next_send_at = [0.0]
    informed = 1
    while informed < p:
        # In a binomial tree every informed process sends to one new process
        # per round, doubling the informed set (bounded by p).
        new_ready: list[float] = []
        for sender in range(informed):
            if informed + len(new_ready) >= p:
                break
            send_start = max(ready_times[sender], next_send_at[sender])
            next_send_at[sender] = send_start + g
            new_ready.append(send_start + g + latency)
        ready_times.extend(new_ready)
        next_send_at.extend(new_ready)
        informed = len(ready_times)
    return max(ready_times)


def predict_pipeline_broadcast(
    params: PLogPParameters,
    message_size: float,
    *,
    segment_size: float = 65_536.0,
) -> float:
    """Segmented-pipeline (chain of segments) broadcast makespan.

    The message is cut into ``ceil(m / segment_size)`` segments that flow down
    a chain of ``P - 1`` hops.  Under pLogP the first segment reaches the last
    process after ``(P - 1) * (g(s) + L)`` and every additional segment adds
    one more gap, giving::

        (P - 1) * (g(s) + L) + (S - 1) * g(s)

    where ``s`` is the segment size and ``S`` the number of segments.
    """
    check_non_negative(message_size, "message_size")
    if segment_size <= 0:
        raise ValueError(f"segment_size must be positive, got {segment_size}")
    p = params.num_procs
    if p <= 1:
        return 0.0
    if message_size == 0:
        return (p - 1) * (params.gap(0.0) + params.latency)
    segments = max(1, math.ceil(message_size / segment_size))
    actual_segment = message_size / segments
    g = params.gap(actual_segment)
    return (p - 1) * (g + params.latency) + (segments - 1) * g


#: Registry mapping algorithm names to their prediction function.
PREDICTORS: dict[str, Callable[..., float]] = {
    "flat": predict_flat_broadcast,
    "chain": predict_chain_broadcast,
    "binomial": predict_binomial_broadcast,
    "pipeline": predict_pipeline_broadcast,
}


def predict_broadcast_time(
    params: PLogPParameters,
    message_size: float,
    *,
    algorithm: str = "binomial",
    **kwargs,
) -> float:
    """Predict the intra-cluster broadcast time with a named algorithm.

    Parameters
    ----------
    params:
        The cluster's pLogP parameters (``num_procs`` is the cluster size).
    message_size:
        Message size in bytes.
    algorithm:
        One of ``"flat"``, ``"chain"``, ``"binomial"`` (default, the shape
        used by MagPIe and by the paper) or ``"pipeline"``.
    kwargs:
        Extra keyword arguments forwarded to the specific predictor (e.g.
        ``segment_size`` for the pipeline).
    """
    try:
        predictor = PREDICTORS[algorithm]
    except KeyError as exc:
        known = ", ".join(sorted(PREDICTORS))
        raise ValueError(f"unknown broadcast algorithm {algorithm!r}; known: {known}") from exc
    return predictor(params, message_size, **kwargs)


def best_broadcast_algorithm(
    params: PLogPParameters,
    message_size: float,
    *,
    candidates: tuple[str, ...] = ("flat", "chain", "binomial", "pipeline"),
) -> tuple[str, float]:
    """Pick the cheapest intra-cluster broadcast algorithm for a cluster.

    This mirrors the "fast tuning of intra-cluster collective communications"
    step of the authors' framework: each cluster independently selects the
    tree shape that minimises its predicted completion time.

    Returns
    -------
    (name, predicted_time):
        The winning algorithm name and its predicted makespan in seconds.
    """
    if not candidates:
        raise ValueError("candidates must not be empty")
    best_name = None
    best_time = float("inf")
    for name in candidates:
        time = predict_broadcast_time(params, message_size, algorithm=name)
        if time < best_time:
            best_name = name
            best_time = time
    assert best_name is not None
    return best_name, best_time
