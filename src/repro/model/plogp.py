"""Core pLogP data structures.

The parameterised LogP model (Kielmann et al., *Network performance-aware
collective communication for clustered wide area systems*, Parallel
Computing 2001) describes a point-to-point link with

* ``L``   -- the end-to-end latency,
* ``g(m)`` -- the *gap* of a message of size ``m``: the minimum interval
  between the starts of two consecutive transmissions, which folds together
  the send overhead and the bandwidth term, and
* ``P``   -- the number of processes attached to the interconnect.

Throughout the library all times are **seconds** and all sizes **bytes**.

Two rules of thumb used by the paper (and implemented here):

* the time for a single message of size ``m`` to travel a link is
  ``L + g(m)`` (:func:`point_to_point_time`);
* a sender that just transmitted a message of size ``m`` may start its next
  transmission ``g(m)`` later (this is how the scheduling heuristics update
  the ready time ``RT_i`` of a sender).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.utils.validation import (
    check_finite,
    check_non_negative,
    check_positive,
)


@dataclass(frozen=True)
class GapFunction:
    """Piecewise-linear model of the pLogP gap ``g(m)``.

    The function is defined by a sorted sequence of ``(size, gap)`` control
    points.  Between control points the gap is interpolated linearly; beyond
    the largest control point it is extrapolated using the slope of the last
    segment (i.e. the asymptotic bandwidth); below the smallest control point
    the gap of the smallest point is used (the fixed per-message overhead
    dominates for tiny messages).

    Control points must have non-negative sizes, non-negative gaps, strictly
    increasing sizes and non-decreasing gaps (a larger message can never be
    cheaper to inject than a smaller one).

    Examples
    --------
    >>> g = GapFunction.from_points([(0, 0.001), (1_000_000, 0.011)])
    >>> round(g(500_000), 4)
    0.006
    >>> g = GapFunction.from_bandwidth(overhead=0.002, bandwidth=125e6)
    >>> round(g(1_250_000), 3)   # 1.25 MB over 125 MB/s + 2 ms overhead
    0.012
    """

    sizes: tuple[float, ...]
    gaps: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.sizes) != len(self.gaps):
            raise ValueError("sizes and gaps must have the same length")
        if len(self.sizes) == 0:
            raise ValueError("GapFunction needs at least one control point")
        previous_size = -1.0
        previous_gap = -1.0
        for size, gap in zip(self.sizes, self.gaps):
            check_non_negative(size, "control point size")
            check_non_negative(gap, "control point gap")
            if size <= previous_size:
                raise ValueError("control point sizes must be strictly increasing")
            if gap < previous_gap:
                raise ValueError("gap must be non-decreasing with message size")
            previous_size = size
            previous_gap = gap

    # -- constructors --------------------------------------------------------

    @classmethod
    def from_points(cls, points: Iterable[tuple[float, float]]) -> "GapFunction":
        """Build a gap function from an iterable of ``(size, gap)`` pairs."""
        pts = sorted((float(s), float(g)) for s, g in points)
        return cls(sizes=tuple(p[0] for p in pts), gaps=tuple(p[1] for p in pts))

    @classmethod
    def from_bandwidth(
        cls,
        *,
        overhead: float,
        bandwidth: float,
        reference_size: float = 1_048_576.0,
    ) -> "GapFunction":
        """Build the affine gap ``g(m) = overhead + m / bandwidth``.

        Parameters
        ----------
        overhead:
            Fixed per-message cost in seconds (software overhead of the
            send/receive path).
        bandwidth:
            Asymptotic bandwidth in bytes per second.
        reference_size:
            Size of the second control point; only affects the internal
            representation, not the modelled values, because the function is
            affine.
        """
        check_non_negative(overhead, "overhead")
        check_positive(bandwidth, "bandwidth")
        check_positive(reference_size, "reference_size")
        return cls.from_points(
            [(0.0, overhead), (reference_size, overhead + reference_size / bandwidth)]
        )

    @classmethod
    def constant(cls, gap: float) -> "GapFunction":
        """Build a gap function that ignores the message size.

        This is how the Monte-Carlo study of the paper models ``g``: Table 2
        draws a single per-pair value for the 1 MB broadcast.
        """
        check_non_negative(gap, "gap")
        return cls(sizes=(0.0,), gaps=(float(gap),))

    # -- evaluation ------------------------------------------------------------

    def __call__(self, message_size: float) -> float:
        """Evaluate the gap for a message of ``message_size`` bytes."""
        check_non_negative(message_size, "message_size")
        sizes = self.sizes
        gaps = self.gaps
        if len(sizes) == 1:
            return gaps[0]
        if message_size <= sizes[0]:
            return gaps[0]
        if message_size >= sizes[-1]:
            # extrapolate with the slope of the last segment
            slope = (gaps[-1] - gaps[-2]) / (sizes[-1] - sizes[-2])
            return gaps[-1] + slope * (message_size - sizes[-1])
        index = bisect_left(sizes, message_size)
        s0, s1 = sizes[index - 1], sizes[index]
        g0, g1 = gaps[index - 1], gaps[index]
        fraction = (message_size - s0) / (s1 - s0)
        return g0 + fraction * (g1 - g0)

    # -- derived quantities ----------------------------------------------------

    def bandwidth(self) -> float:
        """Asymptotic bandwidth (bytes/second) implied by the last segment.

        Returns ``float('inf')`` for constant gap functions.
        """
        if len(self.sizes) == 1:
            return float("inf")
        slope = (self.gaps[-1] - self.gaps[-2]) / (self.sizes[-1] - self.sizes[-2])
        if slope <= 0:
            return float("inf")
        return 1.0 / slope

    def scaled(self, factor: float) -> "GapFunction":
        """Return a new gap function with all gaps multiplied by ``factor``."""
        check_positive(factor, "factor")
        return GapFunction(sizes=self.sizes, gaps=tuple(g * factor for g in self.gaps))


@dataclass(frozen=True)
class PLogPParameters:
    """The pLogP parameter bundle for one link (or one cluster interconnect).

    Attributes
    ----------
    latency:
        End-to-end latency ``L`` in seconds.
    gap:
        The gap function ``g(m)``.
    num_procs:
        Number of processes ``P`` attached to this interconnect.  Only
        meaningful for intra-cluster parameter sets; inter-cluster links keep
        the default of 2 (one endpoint on each side).
    """

    latency: float
    gap: GapFunction
    num_procs: int = 2

    def __post_init__(self) -> None:
        check_non_negative(self.latency, "latency")
        if not isinstance(self.gap, GapFunction):
            raise TypeError("gap must be a GapFunction")
        if isinstance(self.num_procs, bool) or not isinstance(self.num_procs, int):
            raise TypeError("num_procs must be an int")
        if self.num_procs < 1:
            raise ValueError(f"num_procs must be >= 1, got {self.num_procs}")

    def point_to_point_time(self, message_size: float) -> float:
        """Time for one message of ``message_size`` bytes to cross the link."""
        return self.latency + self.gap(message_size)

    def sender_occupancy(self, message_size: float) -> float:
        """Time during which the sender is busy injecting the message."""
        return self.gap(message_size)

    @classmethod
    def from_values(
        cls,
        *,
        latency: float,
        gap: float,
        num_procs: int = 2,
    ) -> "PLogPParameters":
        """Convenience constructor with a size-independent gap value."""
        return cls(latency=check_non_negative(latency, "latency"),
                   gap=GapFunction.constant(gap),
                   num_procs=num_procs)


def point_to_point_time(latency: float, gap: float) -> float:
    """The pLogP cost of a single point-to-point transfer: ``L + g(m)``.

    Tiny free function used in the heuristics' hot loops, where both the
    latency and the already-evaluated gap are plain floats.
    """
    check_finite(latency, "latency")
    check_finite(gap, "gap")
    return latency + gap


def merge_gap_functions(
    functions: Sequence[GapFunction],
    *,
    reducer=max,
) -> GapFunction:
    """Combine several gap functions point-wise.

    Used by the topology layer to derive an *effective* gap for a logical
    cluster whose members sit behind slightly different NICs: the conservative
    choice (default) takes the slowest member at every control size.
    """
    if len(functions) == 0:
        raise ValueError("need at least one gap function to merge")
    all_sizes = sorted({s for f in functions for s in f.sizes})
    merged = [(size, float(reducer(f(size) for f in functions))) for size in all_sizes]
    return GapFunction.from_points(merged)
