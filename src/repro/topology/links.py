"""Communication levels and per-level default link parameters.

Table 1 of the paper (after Lacour, Karonis & Foster) orders interconnects by
latency::

    Level 0      >  Level 1   >  Level 2        >  Level 3, 4, ...
    WAN-TCP         LAN-TCP      localhost-TCP     shared memory / Myrinet / vendor MPI

We keep that taxonomy as :class:`CommunicationLevel` and attach to each level
a set of default pLogP link parameters (latency and bandwidth) that are used
whenever a topology only specifies *which kind* of link connects two entities
(for instance when synthesising node-level detail for the Table 3 grid, whose
paper source only publishes latencies).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum

from repro.model.plogp import GapFunction, PLogPParameters
from repro.utils.validation import check_non_negative, check_positive


class CommunicationLevel(IntEnum):
    """The four-level hierarchy of Table 1 (lower level = higher latency)."""

    WAN = 0
    LAN = 1
    LOCALHOST = 2
    SHARED_MEMORY = 3

    def describe(self) -> str:
        """Human-readable description matching the paper's Table 1."""
        return {
            CommunicationLevel.WAN: "level 0: WAN-TCP (wide-area links between sites)",
            CommunicationLevel.LAN: "level 1: LAN-TCP (links inside a site)",
            CommunicationLevel.LOCALHOST: "level 2: localhost-TCP (processes on one machine)",
            CommunicationLevel.SHARED_MEMORY: "level 3+: shared memory / Myrinet / vendor MPI",
        }[self]


@dataclass(frozen=True)
class LinkParameters:
    """pLogP description of one class of link.

    Attributes
    ----------
    latency:
        One-way latency in seconds.
    bandwidth:
        Asymptotic bandwidth in bytes per second.
    overhead:
        Fixed per-message software overhead in seconds (added to the gap).
    level:
        The communication level this link belongs to.
    """

    latency: float
    bandwidth: float
    overhead: float
    level: CommunicationLevel

    def __post_init__(self) -> None:
        check_non_negative(self.latency, "latency")
        check_positive(self.bandwidth, "bandwidth")
        check_non_negative(self.overhead, "overhead")

    def gap_function(self) -> GapFunction:
        """The affine gap function implied by bandwidth and overhead."""
        return GapFunction.from_bandwidth(overhead=self.overhead, bandwidth=self.bandwidth)

    def plogp(self, num_procs: int = 2) -> PLogPParameters:
        """Bundle this link class as pLogP parameters."""
        return PLogPParameters(
            latency=self.latency, gap=self.gap_function(), num_procs=num_procs
        )


#: Default link classes.  Latencies follow the orders of magnitude of the
#: paper's Table 3 (tens of microseconds inside a cluster, ~5 ms between
#: nearby sites, ~12 ms on the long WAN path); bandwidths follow the GRID5000
#: hardware of the era (Gigabit Ethernet locally, a few hundred Mbit/s across
#: the wide area, see DESIGN.md §4 for the substitution note).
DEFAULT_LINK_CLASSES: dict[CommunicationLevel, LinkParameters] = {
    CommunicationLevel.WAN: LinkParameters(
        latency=10e-3, bandwidth=40e6, overhead=1e-3, level=CommunicationLevel.WAN
    ),
    CommunicationLevel.LAN: LinkParameters(
        latency=100e-6, bandwidth=110e6, overhead=50e-6, level=CommunicationLevel.LAN
    ),
    CommunicationLevel.LOCALHOST: LinkParameters(
        latency=20e-6, bandwidth=400e6, overhead=10e-6, level=CommunicationLevel.LOCALHOST
    ),
    CommunicationLevel.SHARED_MEMORY: LinkParameters(
        latency=2e-6, bandwidth=1.5e9, overhead=1e-6, level=CommunicationLevel.SHARED_MEMORY
    ),
}


def default_link_parameters(level: CommunicationLevel) -> LinkParameters:
    """Return the default :class:`LinkParameters` for a communication level."""
    if not isinstance(level, CommunicationLevel):
        raise TypeError("level must be a CommunicationLevel")
    return DEFAULT_LINK_CLASSES[level]


def classify_latency(latency_seconds: float) -> CommunicationLevel:
    """Classify a measured latency into a communication level.

    The thresholds reflect Table 1's ordering: anything above one millisecond
    is treated as a wide-area link, sub-millisecond TCP as LAN, tens of
    microseconds as localhost loopback, and single-digit microseconds as a
    shared-memory class interconnect.
    """
    check_non_negative(latency_seconds, "latency_seconds")
    if latency_seconds >= 1e-3:
        return CommunicationLevel.WAN
    if latency_seconds >= 50e-6:
        return CommunicationLevel.LAN
    if latency_seconds >= 5e-6:
        return CommunicationLevel.LOCALHOST
    return CommunicationLevel.SHARED_MEMORY
