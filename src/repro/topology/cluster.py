"""A cluster: a group of machines behind a homogeneous local interconnect."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.model.plogp import PLogPParameters
from repro.model.prediction import predict_broadcast_time
from repro.topology.node import Node
from repro.utils.validation import check_non_negative


@dataclass
class Cluster:
    """One (logical) homogeneous cluster of the grid.

    A cluster owns its machines and knows how expensive a *local* broadcast
    is.  The paper uses that local broadcast time, noted ``T_i``, as a first
    class scheduling input of the grid-aware heuristics.  Two ways of defining
    ``T_i`` are supported:

    * give the intra-cluster pLogP parameters (``intra_params``) and an
      algorithm name, in which case ``T_i`` is *predicted* with
      :func:`repro.model.prediction.predict_broadcast_time` — this is what the
      practical evaluation (Figures 5/6) does; or
    * give a ``fixed_broadcast_time``, in which case that value is returned
      for every message size — this is what the Monte-Carlo study of Table 2
      does, where ``T`` is drawn uniformly from [20 ms, 3000 ms].

    Attributes
    ----------
    cluster_id:
        Zero-based index of the cluster inside its grid.
    name:
        Human-readable name (e.g. ``"Orsay"``).
    size:
        Number of machines (>= 1).
    intra_params:
        Optional intra-cluster pLogP parameters.  When provided its
        ``num_procs`` is forced to ``size``.
    broadcast_algorithm:
        Tree shape used for the local broadcast ("binomial" by default, like
        MagPIe and the paper).
    fixed_broadcast_time:
        Optional size-independent local broadcast time in seconds.
    """

    cluster_id: int
    name: str = ""
    size: int = 1
    intra_params: Optional[PLogPParameters] = None
    broadcast_algorithm: str = "binomial"
    fixed_broadcast_time: Optional[float] = None
    _nodes: list[Node] = field(default_factory=list, init=False, repr=False)

    def __post_init__(self) -> None:
        if isinstance(self.cluster_id, bool) or not isinstance(self.cluster_id, int):
            raise TypeError("cluster_id must be an int")
        if self.cluster_id < 0:
            raise ValueError(f"cluster_id must be non-negative, got {self.cluster_id}")
        if isinstance(self.size, bool) or not isinstance(self.size, int):
            raise TypeError("size must be an int")
        if self.size < 1:
            raise ValueError(f"cluster size must be >= 1, got {self.size}")
        if not self.name:
            self.name = f"cluster{self.cluster_id}"
        if self.fixed_broadcast_time is not None:
            check_non_negative(self.fixed_broadcast_time, "fixed_broadcast_time")
        if self.intra_params is not None and self.intra_params.num_procs != self.size:
            self.intra_params = PLogPParameters(
                latency=self.intra_params.latency,
                gap=self.intra_params.gap,
                num_procs=self.size,
            )
        if self.fixed_broadcast_time is None and self.intra_params is None and self.size > 1:
            raise ValueError(
                f"cluster {self.name!r} has {self.size} nodes but neither "
                "intra_params nor fixed_broadcast_time was provided"
            )

    # -- nodes -----------------------------------------------------------------

    def build_nodes(self, first_rank: int) -> list[Node]:
        """Materialise the cluster's :class:`Node` objects.

        Called by :class:`repro.topology.grid.Grid` when the grid is
        assembled; ranks are assigned contiguously starting at ``first_rank``
        and the first node becomes the coordinator.
        """
        if first_rank < 0:
            raise ValueError(f"first_rank must be non-negative, got {first_rank}")
        self._nodes = [
            Node(
                rank=first_rank + index,
                cluster_id=self.cluster_id,
                local_index=index,
                hostname=f"{self.name}-{index}" if self.name else "",
            )
            for index in range(self.size)
        ]
        return list(self._nodes)

    @property
    def nodes(self) -> list[Node]:
        """The cluster's nodes (empty until :meth:`build_nodes` is called)."""
        return list(self._nodes)

    @property
    def coordinator(self) -> Node:
        """The cluster coordinator (the node holding rank ``first_rank``)."""
        if not self._nodes:
            raise RuntimeError(
                f"cluster {self.name!r} has no materialised nodes; "
                "add it to a Grid (or call build_nodes) first"
            )
        return self._nodes[0]

    # -- local broadcast cost ---------------------------------------------------

    def broadcast_time(self, message_size: float) -> float:
        """Local broadcast time ``T_i`` for a message of ``message_size`` bytes.

        Returns 0 for single-node clusters: there is nobody to forward the
        message to once the coordinator holds it.
        """
        check_non_negative(message_size, "message_size")
        if self.size <= 1:
            return 0.0
        if self.fixed_broadcast_time is not None:
            return self.fixed_broadcast_time
        assert self.intra_params is not None  # enforced in __post_init__
        return predict_broadcast_time(
            self.intra_params, message_size, algorithm=self.broadcast_algorithm
        )

    def with_fixed_broadcast_time(self, value: float) -> "Cluster":
        """Return a copy of this cluster with an overridden ``T_i``.

        Useful for sensitivity analyses where the intra-cluster cost is swept
        independently of the cluster's physical description.
        """
        check_non_negative(value, "value")
        return Cluster(
            cluster_id=self.cluster_id,
            name=self.name,
            size=self.size,
            intra_params=self.intra_params,
            broadcast_algorithm=self.broadcast_algorithm,
            fixed_broadcast_time=value,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Cluster(id={self.cluster_id}, name={self.name!r}, size={self.size}, "
            f"algorithm={self.broadcast_algorithm!r})"
        )
