"""Random grid generators for the Monte-Carlo simulation study.

Section 6 of the paper evaluates the heuristics on synthetic grids whose
parameters are drawn uniformly from the ranges of **Table 2**::

            minimum   maximum
    L        1 ms      15 ms
    g      100 ms     600 ms
    T       20 ms    3000 ms

At each Monte-Carlo iteration a fresh grid is generated: every ordered pair
of clusters receives an independent latency and gap draw (the matrices are
kept symmetric, matching a single physical link per pair), and every cluster
receives an independent intra-cluster broadcast time ``T``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.topology.cluster import Cluster
from repro.topology.grid import Grid, InterClusterLink
from repro.utils.rng import RandomStream
from repro.utils.units import ms_to_s
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class ParameterRanges:
    """Uniform sampling ranges for the Monte-Carlo grids (seconds).

    The defaults are exactly the paper's Table 2 values (converted from
    milliseconds).  The ablation benchmarks construct alternative ranges, for
    instance shrinking ``T`` to study when the grid-aware heuristics stop
    mattering.
    """

    latency_min: float = ms_to_s(1.0)
    latency_max: float = ms_to_s(15.0)
    gap_min: float = ms_to_s(100.0)
    gap_max: float = ms_to_s(600.0)
    broadcast_min: float = ms_to_s(20.0)
    broadcast_max: float = ms_to_s(3000.0)

    def __post_init__(self) -> None:
        for low_name, high_name in (
            ("latency_min", "latency_max"),
            ("gap_min", "gap_max"),
            ("broadcast_min", "broadcast_max"),
        ):
            low = check_non_negative(getattr(self, low_name), low_name)
            high = check_non_negative(getattr(self, high_name), high_name)
            if high < low:
                raise ValueError(f"{high_name} ({high}) must be >= {low_name} ({low})")

    def scaled_broadcast(self, factor: float) -> "ParameterRanges":
        """Return a copy with the intra-cluster broadcast range scaled.

        Used by the parameter-sensitivity ablation (DESIGN.md §7.4).
        """
        if factor < 0:
            raise ValueError(f"factor must be non-negative, got {factor}")
        return ParameterRanges(
            latency_min=self.latency_min,
            latency_max=self.latency_max,
            gap_min=self.gap_min,
            gap_max=self.gap_max,
            broadcast_min=self.broadcast_min * factor,
            broadcast_max=self.broadcast_max * factor,
        )


#: The paper's Table 2, verbatim.
PAPER_PARAMETER_RANGES = ParameterRanges()


class RandomGridGenerator:
    """Generates independent random grids per the Table 2 distribution.

    Parameters
    ----------
    ranges:
        Sampling ranges; defaults to the paper's Table 2.
    cluster_size:
        Nominal number of machines per cluster.  It does not influence the
        Monte-Carlo makespans (``T`` is drawn directly), but it makes the
        generated grids usable by the node-level simulator as well.
    """

    def __init__(
        self,
        ranges: ParameterRanges = PAPER_PARAMETER_RANGES,
        *,
        cluster_size: int = 16,
    ) -> None:
        if not isinstance(ranges, ParameterRanges):
            raise TypeError("ranges must be a ParameterRanges instance")
        if isinstance(cluster_size, bool) or not isinstance(cluster_size, int):
            raise TypeError("cluster_size must be an int")
        if cluster_size < 1:
            raise ValueError(f"cluster_size must be >= 1, got {cluster_size}")
        self.ranges = ranges
        self.cluster_size = cluster_size

    def generate(self, num_clusters: int, stream: RandomStream) -> Grid:
        """Draw one random grid with ``num_clusters`` clusters.

        Every unordered cluster pair receives one latency and one gap draw
        (used in both directions); every cluster receives one ``T`` draw.
        """
        if isinstance(num_clusters, bool) or not isinstance(num_clusters, int):
            raise TypeError("num_clusters must be an int")
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        if not isinstance(stream, RandomStream):
            raise TypeError("stream must be a RandomStream")
        ranges = self.ranges
        clusters = [
            Cluster(
                cluster_id=index,
                name=f"cluster{index}",
                size=self.cluster_size,
                fixed_broadcast_time=stream.uniform(
                    ranges.broadcast_min, ranges.broadcast_max
                ),
            )
            for index in range(num_clusters)
        ]
        links: dict[tuple[int, int], InterClusterLink] = {}
        for i in range(num_clusters):
            for j in range(i + 1, num_clusters):
                links[(i, j)] = InterClusterLink.from_values(
                    latency=stream.uniform(ranges.latency_min, ranges.latency_max),
                    gap=stream.uniform(ranges.gap_min, ranges.gap_max),
                )
        return Grid(clusters, links, name=f"random-{num_clusters}-clusters")


def make_uniform_grid(
    num_clusters: int,
    *,
    latency: float = ms_to_s(10.0),
    gap: float = ms_to_s(300.0),
    broadcast_time: float = ms_to_s(500.0),
    cluster_size: int = 16,
    name: str = "uniform-grid",
) -> Grid:
    """Build a fully homogeneous grid (every link and cluster identical).

    Handy for unit tests and for analytical sanity checks: on a homogeneous
    grid every reasonable heuristic should produce the same makespan as a
    binomial schedule over coordinators.
    """
    check_non_negative(latency, "latency")
    check_non_negative(gap, "gap")
    check_non_negative(broadcast_time, "broadcast_time")
    clusters = [
        Cluster(
            cluster_id=index,
            name=f"site{index}",
            size=cluster_size,
            fixed_broadcast_time=broadcast_time,
        )
        for index in range(num_clusters)
    ]
    links = {
        (i, j): InterClusterLink.from_values(latency=latency, gap=gap)
        for i in range(num_clusters)
        for j in range(i + 1, num_clusters)
    }
    return Grid(clusters, links, name=name)
