"""A single machine (MPI process host) in the grid."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Node:
    """One machine of the grid.

    The paper treats machines and MPI processes interchangeably (one process
    per machine), so a :class:`Node` doubles as the identity of an MPI rank in
    the simulated layer of :mod:`repro.mpi`.

    Attributes
    ----------
    rank:
        Global, zero-based rank of the node across the whole grid.  Ranks are
        unique and stable; they are what appears in schedules and traces.
    cluster_id:
        Index of the cluster this node belongs to.
    local_index:
        Zero-based index of the node inside its cluster; the node with
        ``local_index == 0`` is the cluster *coordinator* by convention.
    hostname:
        Optional human-readable name (e.g. ``"orsay-12"``); purely cosmetic.
    """

    rank: int
    cluster_id: int
    local_index: int
    hostname: str = ""

    def __post_init__(self) -> None:
        for field_name in ("rank", "cluster_id", "local_index"):
            value = getattr(self, field_name)
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"{field_name} must be an int, got {type(value).__name__}")
            if value < 0:
                raise ValueError(f"{field_name} must be non-negative, got {value}")

    @property
    def is_coordinator(self) -> bool:
        """Whether this node is its cluster's coordinator (local index 0)."""
        return self.local_index == 0

    def label(self) -> str:
        """A short display label, preferring the hostname when available."""
        if self.hostname:
            return self.hostname
        return f"c{self.cluster_id}n{self.local_index}"
