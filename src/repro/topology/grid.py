"""The two-level grid topology used by all heuristics and experiments."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

import networkx as nx
import numpy as np

from repro.model.plogp import GapFunction, PLogPParameters
from repro.topology.cluster import Cluster
from repro.topology.node import Node
from repro.utils.validation import check_non_negative


@dataclass(frozen=True)
class InterClusterLink:
    """The pLogP description of the link between two clusters.

    Attributes
    ----------
    latency:
        One-way latency ``L_{i,j}`` in seconds.
    gap:
        Gap function ``g_{i,j}(m)``.
    """

    latency: float
    gap: GapFunction

    def __post_init__(self) -> None:
        check_non_negative(self.latency, "latency")
        if not isinstance(self.gap, GapFunction):
            raise TypeError("gap must be a GapFunction")

    def transfer_time(self, message_size: float) -> float:
        """``g_{i,j}(m) + L_{i,j}``: time for the message to reach the peer."""
        return self.gap(message_size) + self.latency

    @classmethod
    def from_values(cls, latency: float, gap: float) -> "InterClusterLink":
        """Build a link with a size-independent gap (Monte-Carlo style)."""
        return cls(latency=latency, gap=GapFunction.constant(gap))


class Grid:
    """A grid: clusters plus a full mesh of inter-cluster links.

    The grid is the single topology object consumed by every other layer:

    * the **scheduling heuristics** (:mod:`repro.core`) read the inter-cluster
      latencies/gaps and the per-cluster local broadcast times ``T_i``;
    * the **simulator** (:mod:`repro.simulator`) additionally needs node-level
      point-to-point parameters, which the grid derives from the cluster
      intra-parameters (for two nodes of the same cluster) or from the
      inter-cluster link (for nodes of different clusters — the coordinators
      are the only nodes that actually use those paths in a hierarchical
      broadcast, but the information is defined for every pair).

    Parameters
    ----------
    clusters:
        The clusters, in index order.  ``clusters[k].cluster_id`` must be
        ``k``.
    links:
        Mapping ``(i, j) -> InterClusterLink`` for every unordered pair of
        distinct clusters.  Links may be asymmetric: the pair is looked up as
        ``(i, j)`` first and falls back to ``(j, i)``.
    name:
        Optional display name of the grid.
    """

    def __init__(
        self,
        clusters: Iterable[Cluster],
        links: dict[tuple[int, int], InterClusterLink],
        *,
        name: str = "grid",
    ) -> None:
        self._clusters: list[Cluster] = list(clusters)
        if not self._clusters:
            raise ValueError("a grid needs at least one cluster")
        for index, cluster in enumerate(self._clusters):
            if not isinstance(cluster, Cluster):
                raise TypeError("clusters must be Cluster instances")
            if cluster.cluster_id != index:
                raise ValueError(
                    f"cluster at position {index} has cluster_id {cluster.cluster_id}; "
                    "cluster ids must match their position"
                )
        self._links: dict[tuple[int, int], InterClusterLink] = dict(links)
        self.name = name
        self._validate_links()
        self._nodes: list[Node] = []
        rank = 0
        for cluster in self._clusters:
            self._nodes.extend(cluster.build_nodes(rank))
            rank += cluster.size

    # -- validation -------------------------------------------------------------

    def _validate_links(self) -> None:
        n = len(self._clusters)
        for (i, j), link in self._links.items():
            if not isinstance(link, InterClusterLink):
                raise TypeError("links values must be InterClusterLink instances")
            if i == j:
                raise ValueError(f"link ({i}, {j}) connects a cluster to itself")
            if not (0 <= i < n and 0 <= j < n):
                raise ValueError(f"link ({i}, {j}) references an unknown cluster")
        for i in range(n):
            for j in range(i + 1, n):
                if (i, j) not in self._links and (j, i) not in self._links:
                    raise ValueError(f"missing inter-cluster link between {i} and {j}")

    # -- basic accessors ---------------------------------------------------------

    @property
    def num_clusters(self) -> int:
        """Number of clusters in the grid."""
        return len(self._clusters)

    @property
    def num_nodes(self) -> int:
        """Total number of machines across all clusters."""
        return len(self._nodes)

    @property
    def clusters(self) -> list[Cluster]:
        """The clusters, in index order."""
        return list(self._clusters)

    @property
    def nodes(self) -> list[Node]:
        """All nodes of the grid, in rank order."""
        return list(self._nodes)

    def cluster(self, cluster_id: int) -> Cluster:
        """The cluster with the given index."""
        if not 0 <= cluster_id < len(self._clusters):
            raise ValueError(f"unknown cluster id {cluster_id}")
        return self._clusters[cluster_id]

    def node(self, rank: int) -> Node:
        """The node with the given global rank."""
        if not 0 <= rank < len(self._nodes):
            raise ValueError(f"unknown rank {rank}")
        return self._nodes[rank]

    def coordinator_rank(self, cluster_id: int) -> int:
        """Global rank of the coordinator of ``cluster_id``."""
        return self.cluster(cluster_id).coordinator.rank

    def cluster_of_rank(self, rank: int) -> int:
        """Cluster index owning the given global rank."""
        return self.node(rank).cluster_id

    def link(self, i: int, j: int) -> InterClusterLink:
        """The inter-cluster link between clusters ``i`` and ``j``."""
        if i == j:
            raise ValueError("no inter-cluster link from a cluster to itself")
        self.cluster(i)
        self.cluster(j)
        if (i, j) in self._links:
            return self._links[(i, j)]
        return self._links[(j, i)]

    # -- pLogP quantities used by the heuristics ---------------------------------

    def latency(self, i: int, j: int) -> float:
        """Inter-cluster latency ``L_{i,j}`` in seconds."""
        return self.link(i, j).latency

    def gap(self, i: int, j: int, message_size: float) -> float:
        """Inter-cluster gap ``g_{i,j}(m)`` in seconds."""
        return self.link(i, j).gap(message_size)

    def transfer_time(self, i: int, j: int, message_size: float) -> float:
        """``g_{i,j}(m) + L_{i,j}``: the cost the heuristics reason about."""
        return self.link(i, j).transfer_time(message_size)

    def broadcast_time(self, cluster_id: int, message_size: float) -> float:
        """Intra-cluster broadcast time ``T_i`` of cluster ``cluster_id``."""
        return self.cluster(cluster_id).broadcast_time(message_size)

    def broadcast_times(self, message_size: float) -> list[float]:
        """``T_i`` for every cluster, in index order."""
        return [c.broadcast_time(message_size) for c in self._clusters]

    def cost_matrices(self, message_size: float) -> "tuple[np.ndarray, np.ndarray]":
        """Dense ``(latency, gap)`` matrices for every ordered cluster pair.

        Equivalent to querying :meth:`latency` / :meth:`gap` per pair (the
        same ``(i, j)``-then-``(j, i)`` link fallback applies), but each
        stored link's gap function is evaluated only once, so building the
        full matrices is O(links) gap evaluations instead of O(n²).  The
        diagonals are zero.  This is the bulk path behind
        :class:`repro.core.costs.GridCostCache`.
        """
        n = len(self._clusters)
        latencies = np.zeros((n, n), dtype=float)
        gaps = np.zeros((n, n), dtype=float)
        evaluated = {
            pair: (link.latency, link.gap(message_size))
            for pair, link in self._links.items()
        }
        for i in range(n):
            row_l = latencies[i]
            row_g = gaps[i]
            for j in range(n):
                if i == j:
                    continue
                values = evaluated.get((i, j))
                if values is None:
                    values = evaluated[(j, i)]
                row_l[j], row_g[j] = values
        return latencies, gaps

    # -- node-level quantities used by the simulator ------------------------------

    def node_link_parameters(self, rank_a: int, rank_b: int) -> PLogPParameters:
        """pLogP parameters of the path between two individual nodes.

        Two nodes of the same cluster use the cluster's intra-cluster
        parameters; nodes of different clusters use the inter-cluster link.
        A node talking to itself has zero cost.
        """
        node_a = self.node(rank_a)
        node_b = self.node(rank_b)
        if rank_a == rank_b:
            return PLogPParameters.from_values(latency=0.0, gap=0.0)
        if node_a.cluster_id == node_b.cluster_id:
            cluster = self.cluster(node_a.cluster_id)
            if cluster.intra_params is not None:
                return cluster.intra_params
            # Fall back to a proportional model derived from the fixed T_i so
            # that Monte-Carlo grids remain simulable at the node level.
            fixed = cluster.fixed_broadcast_time or 0.0
            rounds = max(1, (cluster.size - 1).bit_length())
            per_hop = fixed / rounds if rounds else 0.0
            return PLogPParameters(
                latency=per_hop / 2.0,
                gap=GapFunction.constant(per_hop / 2.0),
                num_procs=cluster.size,
            )
        link = self.link(node_a.cluster_id, node_b.cluster_id)
        return PLogPParameters(latency=link.latency, gap=link.gap, num_procs=2)

    # -- conversions ---------------------------------------------------------------

    def to_networkx(self, message_size: float = 1_048_576.0) -> nx.Graph:
        """Export the cluster-level topology as a weighted :mod:`networkx` graph.

        Nodes are cluster indices carrying ``size``, ``name`` and
        ``broadcast_time`` attributes; edges carry ``latency``, ``gap`` and
        ``transfer_time`` evaluated at ``message_size``.  Handy for
        visualisation and for sanity checks with networkx's own tree
        algorithms.
        """
        graph = nx.Graph(name=self.name)
        for cluster in self._clusters:
            graph.add_node(
                cluster.cluster_id,
                name=cluster.name,
                size=cluster.size,
                broadcast_time=cluster.broadcast_time(message_size),
            )
        for i in range(self.num_clusters):
            for j in range(i + 1, self.num_clusters):
                link = self.link(i, j)
                graph.add_edge(
                    i,
                    j,
                    latency=link.latency,
                    gap=link.gap(message_size),
                    transfer_time=link.transfer_time(message_size),
                )
        return graph

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Grid(name={self.name!r}, clusters={self.num_clusters}, "
            f"nodes={self.num_nodes})"
        )


def complete_links(
    latencies: "list[list[float]] | object",
    gaps: "list[list[float]] | object",
) -> dict[tuple[int, int], InterClusterLink]:
    """Build a full link map from dense latency and gap matrices.

    ``latencies[i][j]`` and ``gaps[i][j]`` give the parameters of the link
    from cluster ``i`` to cluster ``j``; only the upper triangle is read (the
    paper's matrices are symmetric).  Accepts nested lists or numpy arrays.
    """
    size = len(latencies)
    links: dict[tuple[int, int], InterClusterLink] = {}
    for i in range(size):
        row_l = latencies[i]
        row_g = gaps[i]
        if len(row_l) != size or len(row_g) != size:
            raise ValueError("latency and gap matrices must be square and consistent")
        for j in range(i + 1, size):
            links[(i, j)] = InterClusterLink.from_values(
                latency=float(row_l[j]), gap=float(row_g[j])
            )
    return links
