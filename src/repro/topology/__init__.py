"""Grid topology modelling.

A *grid* in the sense of the paper is a two-level hierarchy:

* a set of **clusters** (each a group of machines behind a fast local
  interconnect, represented by :class:`~repro.topology.cluster.Cluster`),
* connected pairwise by **inter-cluster links** whose pLogP parameters
  (latency ``L_{i,j}`` and gap ``g_{i,j}(m)``) are stored in a
  :class:`~repro.topology.grid.Grid`.

The sub-package also provides:

* :mod:`~repro.topology.links` -- the communication-level taxonomy of the
  paper's Table 1 and per-level default link parameters,
* :mod:`~repro.topology.generators` -- random grid generators implementing the
  Monte-Carlo parameter ranges of Table 2,
* :mod:`~repro.topology.grid5000` -- the 88-machine, 6-cluster GRID5000
  excerpt of Table 3 used by the practical evaluation, and
* :mod:`~repro.topology.clustering` -- Lowekamp-style identification of
  logical homogeneous clusters from a full node-to-node latency matrix.
"""

from repro.topology.node import Node
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid, InterClusterLink
from repro.topology.links import (
    CommunicationLevel,
    LinkParameters,
    classify_latency,
    default_link_parameters,
)
from repro.topology.generators import (
    ParameterRanges,
    RandomGridGenerator,
    make_uniform_grid,
)
from repro.topology.grid5000 import (
    GRID5000_CLUSTER_NAMES,
    GRID5000_CLUSTER_SIZES,
    GRID5000_LATENCY_US,
    build_grid5000_topology,
    build_node_latency_matrix,
)
from repro.topology.clustering import LogicalCluster, identify_logical_clusters

__all__ = [
    "Node",
    "Cluster",
    "Grid",
    "InterClusterLink",
    "CommunicationLevel",
    "LinkParameters",
    "classify_latency",
    "default_link_parameters",
    "ParameterRanges",
    "RandomGridGenerator",
    "make_uniform_grid",
    "GRID5000_CLUSTER_NAMES",
    "GRID5000_CLUSTER_SIZES",
    "GRID5000_LATENCY_US",
    "build_grid5000_topology",
    "build_node_latency_matrix",
    "LogicalCluster",
    "identify_logical_clusters",
]
