"""The 88-machine, 6-cluster GRID5000 excerpt of the paper's Table 3.

Section 7 of the paper runs the heuristics on 88 GRID5000 machines split into
six *logical* clusters by Lowekamp's algorithm (tolerance ρ = 30 %)::

    Cluster 0:  31 x Orsay
    Cluster 1:  29 x Orsay
    Cluster 2:   6 x IDPOT
    Cluster 3:   1 x IDPOT
    Cluster 4:   1 x IDPOT
    Cluster 5:  20 x Toulouse

Table 3 publishes the latency (in microseconds) between every pair of
clusters and, on the diagonal, between two machines of the same cluster.  The
paper does **not** publish the corresponding gap/bandwidth figures, so we
derive them from the communication level of each link (WAN for inter-site,
LAN for intra-site / intra-cluster), as documented in DESIGN.md §4.  The
absolute completion times therefore will not match the paper's to the
millisecond, but the curve shapes and the heuristic ranking of Figures 5/6 do
not depend on that calibration.
"""

from __future__ import annotations

import numpy as np

from repro.model.plogp import GapFunction, PLogPParameters
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid, InterClusterLink
from repro.topology.links import CommunicationLevel, classify_latency, default_link_parameters
from repro.utils.units import us_to_s

#: Cluster composition of Table 3 (name, number of machines).
GRID5000_CLUSTER_NAMES: tuple[str, ...] = (
    "Orsay-A",
    "Orsay-B",
    "IDPOT-A",
    "IDPOT-B",
    "IDPOT-C",
    "Toulouse",
)

GRID5000_CLUSTER_SIZES: tuple[int, ...] = (31, 29, 6, 1, 1, 20)

#: Table 3 verbatim: latency in microseconds between clusters (off-diagonal)
#: and between two machines of the same cluster (diagonal).  The paper leaves
#: the diagonal of the single-machine clusters empty ("-"); we keep a nominal
#: localhost value there, it is never used (a one-machine cluster performs no
#: local broadcast).
GRID5000_LATENCY_US: tuple[tuple[float, ...], ...] = (
    (47.56, 62.10, 12181.52, 12187.24, 12197.49, 5210.99),
    (62.10, 47.92, 12181.52, 12198.03, 12195.22, 5211.47),
    (12181.52, 12181.52, 35.52, 60.08, 60.08, 5388.49),
    (12187.24, 12198.03, 60.08, 20.0, 242.47, 5393.98),
    (12197.49, 12195.22, 60.08, 242.47, 20.0, 5394.10),
    (5210.99, 5211.47, 5388.49, 5393.98, 5394.10, 27.53),
)

#: Nominal NIC bandwidth (bytes/second) attributed to each communication
#: level when deriving gap functions for the Table 3 links; see DESIGN.md §4.
DEFAULT_BANDWIDTHS: dict[CommunicationLevel, float] = {
    CommunicationLevel.WAN: 40e6,
    CommunicationLevel.LAN: 110e6,
    CommunicationLevel.LOCALHOST: 400e6,
    CommunicationLevel.SHARED_MEMORY: 1.5e9,
}

#: Single-stream TCP window assumed for the 2005-era wide-area links (bytes).
#: Long-haul throughput in the paper's measurements is window-limited, which
#: is what makes a single 4 MB wide-area transfer cost on the order of a
#: second and the Flat Tree several times slower than the ECEF family.
DEFAULT_TCP_WINDOW = 64 * 1024


def effective_bandwidth(
    latency_seconds: float,
    *,
    tcp_window: float = DEFAULT_TCP_WINDOW,
) -> float:
    """Window-limited single-stream throughput of a link.

    A single TCP stream cannot exceed ``window / RTT``; the effective
    bandwidth of a link is the minimum of that limit and the nominal NIC
    bandwidth of its communication level.  On local-area links the window
    limit is far above the NIC rate, so only wide-area links are affected.
    """
    level = classify_latency(latency_seconds)
    nominal = DEFAULT_BANDWIDTHS[level]
    round_trip = 2.0 * latency_seconds
    if round_trip <= 0.0:
        return nominal
    return min(nominal, tcp_window / round_trip)


def _gap_for_latency(latency_seconds: float) -> GapFunction:
    """Derive a gap function for a link, given only its latency.

    The latency fixes the communication level (Table 1); the level fixes the
    per-message overhead, and the bandwidth is the window-limited effective
    throughput of :func:`effective_bandwidth`.
    """
    level = classify_latency(latency_seconds)
    defaults = default_link_parameters(level)
    return GapFunction.from_bandwidth(
        overhead=defaults.overhead, bandwidth=effective_bandwidth(latency_seconds)
    )


def build_grid5000_topology(*, broadcast_algorithm: str = "binomial") -> Grid:
    """Build the Table 3 grid as a :class:`~repro.topology.grid.Grid`.

    Parameters
    ----------
    broadcast_algorithm:
        Intra-cluster broadcast tree used to predict the ``T_i`` values
        ("binomial" by default, as in MagPIe and the paper).
    """
    latencies_us = np.asarray(GRID5000_LATENCY_US, dtype=float)
    clusters: list[Cluster] = []
    for index, (name, size) in enumerate(zip(GRID5000_CLUSTER_NAMES, GRID5000_CLUSTER_SIZES)):
        intra_latency = us_to_s(latencies_us[index, index])
        intra_params = PLogPParameters(
            latency=intra_latency,
            gap=_gap_for_latency(intra_latency),
            num_procs=size,
        )
        clusters.append(
            Cluster(
                cluster_id=index,
                name=name,
                size=size,
                intra_params=intra_params,
                broadcast_algorithm=broadcast_algorithm,
            )
        )
    links: dict[tuple[int, int], InterClusterLink] = {}
    count = len(clusters)
    for i in range(count):
        for j in range(i + 1, count):
            latency = us_to_s(latencies_us[i, j])
            links[(i, j)] = InterClusterLink(latency=latency, gap=_gap_for_latency(latency))
    return Grid(clusters, links, name="grid5000-88-machines")


def build_node_latency_matrix(
    *,
    jitter: float = 0.0,
    seed: int | None = None,
) -> np.ndarray:
    """Synthesise a full 88x88 node-to-node latency matrix from Table 3.

    Two machines of the same cluster are separated by the cluster's diagonal
    latency; machines of different clusters by the corresponding off-diagonal
    entry.  An optional multiplicative ``jitter`` (relative standard
    deviation) perturbs each pair independently, which is how the clustering
    tests exercise Lowekamp's tolerance parameter ρ.

    Returns
    -------
    numpy.ndarray
        Symmetric matrix of one-way latencies in seconds, with a zero
        diagonal.
    """
    if jitter < 0:
        raise ValueError(f"jitter must be non-negative, got {jitter}")
    sizes = GRID5000_CLUSTER_SIZES
    total = sum(sizes)
    cluster_of = np.empty(total, dtype=int)
    position = 0
    for cluster_index, size in enumerate(sizes):
        cluster_of[position : position + size] = cluster_index
        position += size
    base_us = np.asarray(GRID5000_LATENCY_US, dtype=float)
    matrix = base_us[np.ix_(cluster_of, cluster_of)] * 1e-6
    np.fill_diagonal(matrix, 0.0)
    if jitter > 0.0:
        rng = np.random.default_rng(seed)
        noise = rng.normal(loc=1.0, scale=jitter, size=matrix.shape)
        noise = np.clip(noise, 0.5, 1.5)
        noise = np.triu(noise, k=1)
        noise = noise + noise.T + np.eye(total)
        matrix = matrix * noise
        np.fill_diagonal(matrix, 0.0)
    # enforce exact symmetry (floating point hygiene for downstream tools)
    matrix = (matrix + matrix.T) / 2.0
    return matrix


def cluster_membership() -> list[int]:
    """Ground-truth cluster index of each of the 88 machines, in rank order."""
    membership: list[int] = []
    for cluster_index, size in enumerate(GRID5000_CLUSTER_SIZES):
        membership.extend([cluster_index] * size)
    return membership
