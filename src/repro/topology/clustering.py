"""Identification of logical homogeneous clusters (Lowekamp-style).

The practical evaluation of the paper does not use the administrative cluster
boundaries of GRID5000 directly: machines are grouped into *logical
homogeneous clusters* "according to the cluster map provided by Lowekamp's
algorithm with a tolerance rate ρ = 30 %" (the authors describe their variant
in Barchet-Estefanel & Mounié, *Identifying logical homogeneous clusters for
efficient wide-area communication*, Euro PVM/MPI 2004).  The essence of the
method is:

1. machines whose mutual latency is "small and similar" belong to the same
   logical cluster;
2. a tolerance ρ allows latencies within a cluster to differ by up to a
   factor ``1 + ρ`` of the cluster's reference latency;
3. machines that do not fit any existing cluster open a new one (possibly a
   singleton — this is how the paper ends up with two one-machine IDPOT
   clusters in Table 3).

We implement this as a deterministic agglomerative procedure over the full
node-to-node latency matrix, using networkx connected components over the
graph of "compatible" pairs followed by a refinement step that enforces the
tolerance within every group.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx
import numpy as np

from repro.utils.validation import check_probability


@dataclass(frozen=True)
class LogicalCluster:
    """One logical homogeneous cluster produced by the identification step.

    Attributes
    ----------
    members:
        Global ranks of the machines in this cluster, sorted.
    reference_latency:
        The latency that characterises the cluster (the median pairwise
        latency between members, 0 for singletons).
    """

    members: tuple[int, ...]
    reference_latency: float

    @property
    def size(self) -> int:
        """Number of machines in the logical cluster."""
        return len(self.members)


def _validate_matrix(latency_matrix: np.ndarray) -> np.ndarray:
    matrix = np.asarray(latency_matrix, dtype=float)
    if matrix.ndim != 2 or matrix.shape[0] != matrix.shape[1]:
        raise ValueError("latency_matrix must be square")
    if matrix.shape[0] == 0:
        raise ValueError("latency_matrix must not be empty")
    if np.any(matrix < 0):
        raise ValueError("latencies must be non-negative")
    if not np.allclose(matrix, matrix.T, rtol=1e-6, atol=1e-12):
        raise ValueError("latency_matrix must be symmetric")
    return matrix


def _compatible(latency_a: float, latency_b: float, tolerance: float) -> bool:
    """Whether two latencies are within a factor (1 + tolerance) of each other."""
    low = min(latency_a, latency_b)
    high = max(latency_a, latency_b)
    if low == 0.0:
        return high == 0.0
    return high <= low * (1.0 + tolerance)


def identify_logical_clusters(
    latency_matrix: np.ndarray,
    *,
    tolerance: float = 0.30,
    wan_threshold: float = 1e-3,
) -> list[LogicalCluster]:
    """Partition machines into logical homogeneous clusters.

    Parameters
    ----------
    latency_matrix:
        Symmetric matrix of one-way latencies between machines, in seconds
        (the diagonal is ignored).
    tolerance:
        Lowekamp tolerance rate ρ: two machines may share a cluster only if
        their mutual latency is within ``(1 + ρ)`` of the smallest latency
        each of them exhibits towards the cluster, and all intra-cluster
        latencies stay below ``wan_threshold``.
    wan_threshold:
        Latencies at or above this value (default 1 ms) are considered
        wide-area and never grouped, regardless of the tolerance.

    Returns
    -------
    list of :class:`LogicalCluster`
        Clusters sorted by decreasing size then by first member rank, which is
        the presentation order used by the paper's Table 3.
    """
    matrix = _validate_matrix(latency_matrix)
    tolerance = check_probability(tolerance, "tolerance") if tolerance <= 1 else tolerance
    if tolerance < 0:
        raise ValueError(f"tolerance must be non-negative, got {tolerance}")
    count = matrix.shape[0]

    # Step 1: build the compatibility graph.  Two machines are compatible if
    # their direct latency is local-area and comparable to the *best* latency
    # either machine sees (within the tolerance factor).
    best_latency = np.empty(count)
    for index in range(count):
        off_diagonal = np.delete(matrix[index], index)
        best_latency[index] = off_diagonal.min() if off_diagonal.size else 0.0

    graph = nx.Graph()
    graph.add_nodes_from(range(count))
    for i in range(count):
        for j in range(i + 1, count):
            latency = matrix[i, j]
            if latency >= wan_threshold:
                continue
            reference = max(min(best_latency[i], best_latency[j]), 1e-12)
            if latency <= reference * (1.0 + tolerance):
                graph.add_edge(i, j, latency=latency)

    # Step 2: connected components are candidate clusters; refine each one so
    # that *all* pairwise latencies respect the tolerance with respect to the
    # component's minimum latency, splitting off outliers into their own
    # clusters (this is what isolates the single-machine IDPOT nodes, whose
    # 242 µs mutual latency violates ρ = 30 % of the 60 µs reference).
    clusters: list[list[int]] = []
    for component in nx.connected_components(graph):
        members = sorted(component)
        clusters.extend(_refine_component(matrix, members, tolerance))

    # Machines with no compatible peer at all become singletons via empty
    # components handled above (they are isolated nodes in the graph).

    result: list[LogicalCluster] = []
    for members in clusters:
        members_tuple = tuple(sorted(members))
        if len(members_tuple) >= 2:
            submatrix = matrix[np.ix_(members_tuple, members_tuple)]
            upper = submatrix[np.triu_indices(len(members_tuple), k=1)]
            reference = float(np.median(upper))
        else:
            reference = 0.0
        result.append(LogicalCluster(members=members_tuple, reference_latency=reference))
    result.sort(key=lambda c: (-c.size, c.members[0]))
    return result


def _refine_component(
    matrix: np.ndarray, members: list[int], tolerance: float
) -> list[list[int]]:
    """Split a candidate component until every group satisfies the tolerance."""
    if len(members) <= 1:
        return [members]
    submatrix = matrix[np.ix_(members, members)]
    upper_indices = np.triu_indices(len(members), k=1)
    pair_latencies = submatrix[upper_indices]
    minimum = pair_latencies.min()
    if pair_latencies.max() <= minimum * (1.0 + tolerance):
        return [members]
    # Greedy split: seed a group with the pair achieving the minimum latency,
    # grow it with every machine whose latency to all current members stays
    # within tolerance of the minimum, and recurse on the rest.
    i_min, j_min = (upper_indices[0][pair_latencies.argmin()],
                    upper_indices[1][pair_latencies.argmin()])
    group = {members[i_min], members[j_min]}
    threshold = minimum * (1.0 + tolerance)
    changed = True
    while changed:
        changed = False
        for candidate in members:
            if candidate in group:
                continue
            if all(matrix[candidate, other] <= threshold for other in group):
                group.add(candidate)
                changed = True
    rest = [m for m in members if m not in group]
    return [sorted(group)] + _refine_component(matrix, rest, tolerance)


def membership_vector(clusters: list[LogicalCluster], num_nodes: int) -> list[int]:
    """Convert a cluster list into a per-node membership vector.

    ``membership[rank]`` is the index of the cluster containing ``rank`` in
    the given list.  Raises if the clusters do not form a partition of
    ``range(num_nodes)``.
    """
    membership = [-1] * num_nodes
    for index, cluster in enumerate(clusters):
        for member in cluster.members:
            if not 0 <= member < num_nodes:
                raise ValueError(f"cluster member {member} outside [0, {num_nodes})")
            if membership[member] != -1:
                raise ValueError(f"node {member} appears in two clusters")
            membership[member] = index
    missing = [rank for rank, value in enumerate(membership) if value == -1]
    if missing:
        raise ValueError(f"nodes {missing} belong to no cluster")
    return membership
