"""Statistics, ranking and visualisation helpers for experiment results."""

from repro.analysis.statistics import (
    SummaryStatistics,
    confidence_interval,
    summarize,
)
from repro.analysis.comparison import (
    crossover_points,
    pairwise_speedup,
    rank_heuristics,
)
from repro.analysis.gantt import render_execution_gantt, render_schedule_gantt

__all__ = [
    "SummaryStatistics",
    "confidence_interval",
    "summarize",
    "crossover_points",
    "pairwise_speedup",
    "rank_heuristics",
    "render_execution_gantt",
    "render_schedule_gantt",
]
