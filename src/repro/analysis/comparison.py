"""Comparing heuristics: rankings, speed-ups and crossover detection."""

from __future__ import annotations

from typing import Sequence


def rank_heuristics(mean_times: dict[str, float]) -> list[tuple[str, float]]:
    """Sort heuristics by mean completion time (best first).

    Ties are broken alphabetically so that rankings are stable across runs.
    """
    if not mean_times:
        raise ValueError("mean_times must not be empty")
    for name, value in mean_times.items():
        if value < 0:
            raise ValueError(f"negative completion time for {name!r}")
    return sorted(mean_times.items(), key=lambda item: (item[1], item[0]))


def pairwise_speedup(
    baseline: Sequence[float], candidate: Sequence[float]
) -> list[float]:
    """Element-wise speed-up of ``candidate`` over ``baseline``.

    A value above 1 means the candidate is faster at that point.  Zero
    candidate values (possible for degenerate zero-byte runs) yield
    ``float('inf')``.
    """
    if len(baseline) != len(candidate):
        raise ValueError("series must have the same length")
    speedups: list[float] = []
    for base, cand in zip(baseline, candidate):
        if base < 0 or cand < 0:
            raise ValueError("completion times must be non-negative")
        if cand == 0:
            speedups.append(float("inf") if base > 0 else 1.0)
        else:
            speedups.append(base / cand)
    return speedups


def crossover_points(
    x_values: Sequence[float],
    series_a: Sequence[float],
    series_b: Sequence[float],
) -> list[float]:
    """X positions where series A and B swap order (linear interpolation).

    Used to locate, for example, the cluster count beyond which ECEF-LAT
    starts beating ECEF-LA, or the message size where the grid-unaware
    binomial overtakes the Flat Tree.
    """
    if not (len(x_values) == len(series_a) == len(series_b)):
        raise ValueError("all series must have the same length")
    if len(x_values) < 2:
        return []
    crossings: list[float] = []
    for index in range(1, len(x_values)):
        before = series_a[index - 1] - series_b[index - 1]
        after = series_a[index] - series_b[index]
        if before == 0.0:
            crossings.append(float(x_values[index - 1]))
            continue
        if before * after < 0:
            # Linear interpolation of the zero crossing of (A - B).
            fraction = before / (before - after)
            x0, x1 = float(x_values[index - 1]), float(x_values[index])
            crossings.append(x0 + fraction * (x1 - x0))
    return crossings
