"""Summary statistics used by the experiment reports and the tests."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class SummaryStatistics:
    """Basic summary of a sample of makespans (all values in seconds).

    Attributes
    ----------
    count:
        Sample size.
    mean, std:
        Sample mean and (population) standard deviation.
    minimum, maximum:
        Extremes.
    median:
        50th percentile.
    percentile_95:
        95th percentile — useful because broadcast tail latencies are what
        applications that rotate roots actually feel.
    """

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    median: float
    percentile_95: float

    def coefficient_of_variation(self) -> float:
        """Standard deviation divided by the mean (0 if the mean is 0)."""
        return self.std / self.mean if self.mean else 0.0


def summarize(values: Sequence[float]) -> SummaryStatistics:
    """Compute :class:`SummaryStatistics` for a non-empty sample."""
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot summarise an empty sample")
    if np.any(~np.isfinite(array)):
        raise ValueError("sample contains non-finite values")
    return SummaryStatistics(
        count=int(array.size),
        mean=float(array.mean()),
        std=float(array.std()),
        minimum=float(array.min()),
        maximum=float(array.max()),
        median=float(np.median(array)),
        percentile_95=float(np.percentile(array, 95)),
    )


def confidence_interval(
    values: Sequence[float], *, confidence: float = 0.95
) -> tuple[float, float]:
    """Normal-approximation confidence interval for the sample mean.

    With the paper's 10 000 iterations the normal approximation is exact for
    all practical purposes; for the smaller samples used in tests it is still
    adequate because makespans are bounded and well-behaved.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    array = np.asarray(list(values), dtype=float)
    if array.size == 0:
        raise ValueError("cannot compute a confidence interval of an empty sample")
    mean = float(array.mean())
    if array.size == 1:
        return mean, mean
    stderr = float(array.std(ddof=1)) / math.sqrt(array.size)
    # Two-sided z value via the inverse error function.
    z = math.sqrt(2.0) * _erfinv(confidence)
    return mean - z * stderr, mean + z * stderr


def _erfinv(value: float) -> float:
    """Inverse error function (Winitzki's approximation, ~1e-4 accuracy)."""
    a = 0.147
    sign = 1.0 if value >= 0 else -1.0
    ln_term = math.log(1.0 - value * value)
    first = 2.0 / (math.pi * a) + ln_term / 2.0
    return sign * math.sqrt(math.sqrt(first * first - ln_term / a) - first)
