"""ASCII Gantt charts of broadcast schedules and simulated executions.

Useful when debugging a heuristic or explaining why a schedule is slow: the
chart shows, per cluster (or per machine), when the coordinator is busy
injecting wide-area messages, when the message arrives and when the local
broadcast runs.  Pure text, so it works in logs and in doctests.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.schedule import BroadcastSchedule
from repro.simulator.execution import ExecutionResult
from repro.utils.validation import check_positive

#: Characters used by the charts.
SEND_CHAR = "#"
LOCAL_CHAR = "="
WAIT_CHAR = "."
IDLE_CHAR = " "


def _scale(time: float, makespan: float, width: int) -> int:
    if makespan <= 0:
        return 0
    return min(width, int(round(time / makespan * width)))


def render_schedule_gantt(
    schedule: BroadcastSchedule,
    *,
    width: int = 60,
    labels: Sequence[str] | None = None,
) -> str:
    """Render a cluster-level Gantt chart of a broadcast schedule.

    Per cluster the chart shows, on a time axis scaled to the makespan:

    * ``.`` while the cluster is waiting for the message,
    * ``#`` while its coordinator is injecting inter-cluster messages,
    * ``=`` during its local broadcast,
    * a trailing ``|`` at its completion time.

    Parameters
    ----------
    schedule:
        The schedule to draw.
    width:
        Number of character cells representing the makespan.
    labels:
        Optional row labels (defaults to ``cluster <i>``); must have one entry
        per cluster.
    """
    check_positive(width, "width")
    width = int(width)
    num_clusters = schedule.num_clusters
    if labels is None:
        labels = [f"cluster {index}" for index in range(num_clusters)]
    labels = list(labels)
    if len(labels) != num_clusters:
        raise ValueError(
            f"labels must have {num_clusters} entries, got {len(labels)}"
        )
    makespan = schedule.makespan
    label_width = max(len(label) for label in labels)
    lines = [
        f"schedule Gantt ({schedule.heuristic_name or 'unnamed'}), "
        f"makespan {makespan * 1e3:.2f} ms, one column ≈ {makespan / max(width, 1) * 1e3:.2f} ms"
    ]
    for cluster in range(num_clusters):
        row = [IDLE_CHAR] * (width + 1)
        arrival = schedule.arrival_times[cluster]
        completion = schedule.completion_times[cluster]
        local_start = schedule.local_start_times[cluster]
        # waiting period
        for cell in range(_scale(0.0, makespan, width), _scale(arrival, makespan, width)):
            row[cell] = WAIT_CHAR
        # local broadcast period
        for cell in range(
            _scale(local_start, makespan, width), _scale(completion, makespan, width)
        ):
            row[cell] = LOCAL_CHAR
        # sending periods (drawn last so they win over the local marker)
        for transfer in schedule.sends_of(cluster):
            start = _scale(transfer.start_time, makespan, width)
            end = max(start + 1, _scale(transfer.sender_release_time, makespan, width))
            for cell in range(start, min(end, width + 1)):
                row[cell] = SEND_CHAR
        end_marker = _scale(completion, makespan, width)
        row[min(end_marker, width)] = "|"
        lines.append(f"{labels[cluster]:<{label_width}} {''.join(row)}")
    lines.append(
        f"{'legend':<{label_width}} {WAIT_CHAR}=waiting  {SEND_CHAR}=inter-cluster send  "
        f"{LOCAL_CHAR}=local broadcast  |=completion"
    )
    return "\n".join(lines)


def render_execution_gantt(
    execution: ExecutionResult,
    *,
    width: int = 60,
    max_rows: int = 24,
) -> str:
    """Render a machine-level Gantt chart of a simulated execution.

    Each row is one rank; ``#`` marks intervals during which the rank's NIC is
    injecting a message (from the execution trace), ``.`` marks the waiting
    period before its first activation.  Only the ``max_rows`` busiest ranks
    are shown, which keeps 88-machine charts readable.
    """
    check_positive(width, "width")
    check_positive(max_rows, "max_rows")
    width = int(width)
    makespan = execution.makespan
    num_ranks = len(execution.activation_times)
    busy: dict[int, list[tuple[float, float]]] = {}
    for record in execution.trace:
        busy.setdefault(record.source, []).append(
            (record.start_time, record.start_time + (record.delivery_time - record.start_time))
        )
    # Rank rows by activity (number of sends, then rank id) and truncate.
    ordered = sorted(range(num_ranks), key=lambda r: (-len(busy.get(r, [])), r))
    shown = sorted(ordered[: int(max_rows)])
    lines = [
        f"execution Gantt ({execution.program_name}), makespan {makespan * 1e3:.2f} ms, "
        f"{len(shown)}/{num_ranks} ranks shown"
    ]
    for rank in shown:
        row = [IDLE_CHAR] * (width + 1)
        activation = execution.activation_times[rank]
        if activation is None:
            activation = makespan
        for cell in range(0, _scale(activation, makespan, width)):
            row[cell] = WAIT_CHAR
        for start, end in busy.get(rank, []):
            first = _scale(start, makespan, width)
            last = max(first + 1, _scale(end, makespan, width))
            for cell in range(first, min(last, width + 1)):
                row[cell] = SEND_CHAR
        lines.append(f"rank {rank:>4} {''.join(row)}")
    return "\n".join(lines)
