"""Dense pLogP cost matrices, computed once per (grid, message size).

Every scheduling decision — and the timing model that turns decisions into a
schedule — only ever reads three quantities: the inter-cluster gap
``g_{i,j}(m)``, the inter-cluster latency ``L_{i,j}`` and the intra-cluster
broadcast time ``T_i``.  The seed implementation recomputed all of them from
the :class:`~repro.topology.grid.Grid` for every ``SchedulingState``, i.e.
once *per heuristic per schedule*; at 10 000 Monte-Carlo iterations × 7
heuristics that is 70 000 full n×n matrix rebuilds per cluster count.

:class:`GridCostCache` computes the dense NumPy matrices exactly once per
``(grid, message_size)`` pair and shares them between

* every :class:`~repro.core.base.SchedulingState` (scalar and vectorized),
* :func:`~repro.core.base.run_heuristics`,
* the Monte-Carlo study (:mod:`repro.experiments.simulation_study`) and the
  hit-rate analysis built on top of it, and
* :func:`~repro.core.schedule.evaluate_order`.

The shared matrices are marked read-only so one heuristic cannot corrupt the
costs seen by the next; vectorized consumers that need scratch space copy the
relevant sub-matrices.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative


class GridCostCache:
    """Read-only dense cost matrices for one ``(grid, message_size)`` pair.

    Attributes
    ----------
    message_size:
        Message size in bytes the gap matrix was evaluated at.
    num_clusters:
        Number of clusters (the matrices are ``num_clusters`` square).
    gap, latency, transfer:
        ``(n, n)`` float arrays holding ``g_{i,j}(m)``, ``L_{i,j}`` and their
        sum ``g_{i,j}(m) + L_{i,j}``.  Diagonals are zero.
    broadcast:
        ``(n,)`` float array of the local broadcast times ``T_i``.
    """

    #: Per-grid cache of instances, keyed weakly so entries die with the grid.
    _instances: "weakref.WeakKeyDictionary[Grid, dict[float, GridCostCache]]" = (
        weakref.WeakKeyDictionary()
    )

    #: Distinct message sizes cached per grid before the oldest entry is
    #: evicted — bounds memory for long-lived grids swept over many payload
    #: sizes (the Figures 5/6 sweep uses 10 sizes on one grid).
    MAX_SIZES_PER_GRID = 16

    def __init__(self, grid: Grid, message_size: float) -> None:
        check_non_negative(message_size, "message_size")
        n = grid.num_clusters
        latency, gap = grid.cost_matrices(message_size)
        self.message_size = float(message_size)
        self.num_clusters = n
        self.gap = gap
        self.latency = latency
        self.transfer = gap + latency
        self.broadcast = np.asarray(grid.broadcast_times(message_size), dtype=float)
        for array in (self.gap, self.latency, self.transfer, self.broadcast):
            array.setflags(write=False)
        # Weak back-reference only: a strong one would keep the grid (and this
        # cache, through _instances) alive forever.
        self._grid_ref = weakref.ref(grid)
        self._min_incoming: list[float] | None = None

    # -- shared construction -------------------------------------------------------

    @classmethod
    def for_grid(cls, grid: Grid, message_size: float) -> "GridCostCache":
        """The shared cache for ``(grid, message_size)``, built on first use.

        Grids are keyed by identity through a weak reference, so caches are
        reclaimed together with their grid — Monte-Carlo loops over millions
        of generated grids do not accumulate matrices.
        """
        per_grid = cls._instances.get(grid)
        if per_grid is None:
            per_grid = {}
            cls._instances[grid] = per_grid
        key = float(message_size)
        cache = per_grid.get(key)
        if cache is None:
            cache = cls(grid, message_size)
            while len(per_grid) >= cls.MAX_SIZES_PER_GRID:
                per_grid.pop(next(iter(per_grid)))  # FIFO eviction
            per_grid[key] = cache
        return cache

    @classmethod
    def build(cls, grid: Grid, message_size: float) -> "GridCostCache":
        """An *uncached* fresh instance (reference/benchmark baseline path)."""
        return cls(grid, message_size)

    # -- accessors -----------------------------------------------------------------

    @property
    def grid(self) -> Grid | None:
        """The grid the matrices were computed for (``None`` once collected)."""
        return self._grid_ref()

    def matches(self, grid: Grid, message_size: float) -> bool:
        """Whether this cache was computed for exactly this grid and size."""
        return self._grid_ref() is grid and self.message_size == float(message_size)

    def transfer_time(self, i: int, j: int) -> float:
        """``g_{i,j}(m) + L_{i,j}`` as a plain float (scalar reference path)."""
        return float(self.transfer[i, j])

    def gap_of(self, i: int, j: int) -> float:
        """``g_{i,j}(m)`` as a plain float."""
        return float(self.gap[i, j])

    def latency_of(self, i: int, j: int) -> float:
        """``L_{i,j}`` as a plain float."""
        return float(self.latency[i, j])

    def broadcast_time(self, i: int) -> float:
        """``T_i`` as a plain float."""
        return float(self.broadcast[i])

    def broadcast_list(self) -> list[float]:
        """All ``T_i`` values as a plain list (index order)."""
        return self.broadcast.tolist()

    def min_incoming(self) -> list[float]:
        """Cheapest incoming transfer per cluster: ``min_{i != j} g+L``.

        Used by the branch-and-bound lower bound of
        :class:`~repro.core.optimal.OptimalSearch`; computed lazily and cached
        because only the optimal search needs it.
        """
        if self._min_incoming is None:
            if self.num_clusters == 1:
                self._min_incoming = [0.0]
            else:
                masked = self.transfer.copy()
                np.fill_diagonal(masked, np.inf)
                self._min_incoming = masked.min(axis=0).tolist()
        return self._min_incoming

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GridCostCache(clusters={self.num_clusters}, "
            f"message_size={self.message_size:.0f})"
        )
