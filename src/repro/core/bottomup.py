"""The BottomUp max-min heuristic (paper §5.3)."""

from __future__ import annotations

from repro.core.base import SchedulingHeuristic, SchedulingState


class BottomUp(SchedulingHeuristic):
    """Max-min selection: serve the slowest waiting cluster as early as possible.

    The ECEF family is min-min/min-max flavoured: it always optimises the
    communication terms and therefore favours *fast* clusters.  The paper
    observes that the critical path of a hierarchical broadcast is usually set
    by the **slow** clusters, and proposes a max-min rule instead::

        choose  argmax_{j in B}  min_{i in A} ( g_{i,j}(m) + L_{i,j} + T_j )

    i.e. among the waiting clusters, pick the one whose *best possible*
    completion (cheapest incoming transfer plus its own local broadcast) is
    the worst, and serve it through that cheapest sender.  Slow clusters are
    contacted as soon as possible while senders are released early, "ready to
    be selected again".

    Parameters
    ----------
    use_ready_time:
        When ``True`` the inner minimisation uses
        ``RT_i + g_{i,j}(m) + L_{i,j} + T_j`` instead of the paper's formula
        (which omits ``RT_i``).  The default ``False`` follows the paper; the
        variant is exercised by the lookahead/strategy ablation benchmarks.
    """

    key = "bottom_up"
    display_name = "BottomUp"

    def __init__(self, *, use_ready_time: bool = False) -> None:
        self.use_ready_time = bool(use_ready_time)

    def build_order(self, state: SchedulingState) -> None:
        if state.vectorized:
            while not state.done:
                state.commit(
                    *state.select_bottom_up(use_ready_time=self.use_ready_time)
                )
            return
        # Scalar reference path (kept for engine-equivalence testing).
        while not state.done:
            best_receiver: int | None = None
            best_receiver_cost = -float("inf")
            best_sender: int | None = None
            for receiver in state.pending:
                inner_best_cost = float("inf")
                inner_best_sender: int | None = None
                for sender in state.informed:
                    cost = state.transfer_time(sender, receiver) + state.broadcast_time(
                        receiver
                    )
                    if self.use_ready_time:
                        cost += state.ready_time[sender]
                    if cost < inner_best_cost:
                        inner_best_cost = cost
                        inner_best_sender = sender
                if inner_best_cost > best_receiver_cost:
                    best_receiver_cost = inner_best_cost
                    best_receiver = receiver
                    best_sender = inner_best_sender
            assert best_receiver is not None and best_sender is not None
            state.commit(best_sender, best_receiver)
