"""Inter-cluster broadcast scheduling heuristics (the paper's contribution).

The scheduling problem
----------------------

A broadcast on a grid is organised hierarchically.  Only cluster
*coordinators* exchange the message across the wide area; once a coordinator
stops participating in inter-cluster traffic it broadcasts locally, which
takes the cluster-specific time ``T_i``.  Scheduling the inter-cluster phase
means choosing, round after round, a sender from the informed set ``A`` and a
receiver from the waiting set ``B`` (paper §3).  The quality of a schedule is
its **makespan**: the time at which the last machine of the last cluster holds
the message.

Public API
----------

* :class:`~repro.core.schedule.BroadcastSchedule` and
  :func:`~repro.core.schedule.evaluate_order` -- the schedule data structure
  and the shared pLogP timing model that turns an ordered list of
  (sender, receiver) decisions into start/arrival/completion times.
* :class:`~repro.core.base.SchedulingHeuristic` -- the heuristic interface.
* :class:`~repro.core.costs.GridCostCache` -- dense pLogP cost matrices
  computed once per (grid, message size) and shared by every heuristic, the
  timing model and the Monte-Carlo drivers.
* :mod:`repro.core.batch` -- the batched engine scheduling whole stacks of
  same-sized grids per NumPy call (used by the Monte-Carlo study).
* Concrete heuristics: :class:`~repro.core.flat_tree.FlatTreeHeuristic`,
  :class:`~repro.core.fef.FastestEdgeFirst`, :class:`~repro.core.ecef.ECEF`,
  :class:`~repro.core.ecef.ECEFLookahead` (with pluggable lookahead
  functions, including the paper's grid-aware ECEF-LAt / ECEF-LAT),
  :class:`~repro.core.bottomup.BottomUp`, :class:`~repro.core.mixed.MixedStrategy`
  and the exhaustive :class:`~repro.core.optimal.OptimalSearch`.
* :func:`~repro.core.registry.get_heuristic` /
  :func:`~repro.core.registry.available_heuristics` -- name-based factory
  used by the experiment harness and the CLI.
"""

from repro.core.schedule import (
    BroadcastSchedule,
    ScheduledTransfer,
    evaluate_order,
)
from repro.core.costs import GridCostCache
from repro.core.base import SchedulingHeuristic, SchedulingState, run_heuristics
from repro.core.flat_tree import FlatTreeHeuristic
from repro.core.fef import FastestEdgeFirst
from repro.core.ecef import ECEF, ECEFLookahead
from repro.core.lookahead import (
    LookaheadFunction,
    average_latency_lookahead,
    grid_aware_max_lookahead,
    grid_aware_min_lookahead,
    min_edge_lookahead,
    no_lookahead,
)
from repro.core.bottomup import BottomUp
from repro.core.mixed import MixedStrategy
from repro.core.optimal import OptimalSearch
from repro.core.registry import (
    PAPER_HEURISTICS,
    available_heuristics,
    get_heuristic,
    register_heuristic,
)

__all__ = [
    "BroadcastSchedule",
    "ScheduledTransfer",
    "evaluate_order",
    "GridCostCache",
    "SchedulingHeuristic",
    "SchedulingState",
    "run_heuristics",
    "FlatTreeHeuristic",
    "FastestEdgeFirst",
    "ECEF",
    "ECEFLookahead",
    "LookaheadFunction",
    "no_lookahead",
    "min_edge_lookahead",
    "average_latency_lookahead",
    "grid_aware_min_lookahead",
    "grid_aware_max_lookahead",
    "BottomUp",
    "MixedStrategy",
    "OptimalSearch",
    "PAPER_HEURISTICS",
    "available_heuristics",
    "get_heuristic",
    "register_heuristic",
]
