"""The Flat Tree baseline (ECO / MagPIe strategy, paper §4.1)."""

from __future__ import annotations

from typing import Sequence

from repro.core.base import SchedulingHeuristic, SchedulingState


class FlatTreeHeuristic(SchedulingHeuristic):
    """Root sends to every other coordinator, one after the other.

    This is the inter-cluster strategy of the ECO and MagPIe libraries: the
    root's coordinator walks the cluster list sequentially, "despite the
    presence of other (potential) sources in set A".  The paper stresses two
    weaknesses that our implementation preserves faithfully:

    * the schedule ignores link heterogeneity entirely, and
    * it depends on how the cluster list is arranged relative to the root —
      rotating the broadcast root can change the performance substantially.

    Parameters
    ----------
    cluster_order:
        Optional explicit visit order (cluster indices).  When omitted the
        clusters are contacted in increasing index order starting after the
        root, wrapping around — i.e. exactly "how the clusters list is
        arranged with respect to the root process".
    """

    key = "flat_tree"
    display_name = "Flat Tree"

    def __init__(self, cluster_order: Sequence[int] | None = None) -> None:
        self.cluster_order = list(cluster_order) if cluster_order is not None else None

    def resolve_targets(self, root: int, num_clusters: int) -> list[int]:
        """The root's visit order, validated against the grid size.

        Shared by the per-grid engines and the batched kernel so both reject
        a malformed ``cluster_order`` (duplicates, missing or unknown
        clusters) identically.
        """
        if self.cluster_order is None:
            return [(root + offset) % num_clusters for offset in range(1, num_clusters)]
        targets = [c for c in self.cluster_order if c != root]
        expected = set(range(num_clusters)) - {root}
        if set(targets) != expected or len(targets) != len(expected):
            raise ValueError(
                "cluster_order must contain every non-root cluster exactly once"
            )
        return targets

    def build_order(self, state: SchedulingState) -> None:
        root = state.root
        for target in self.resolve_targets(root, state.grid.num_clusters):
            state.commit(root, target)
