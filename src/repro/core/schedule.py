"""Broadcast schedules and the shared pLogP timing model.

Every heuristic in this package ultimately produces an ordered list of
``(sender_cluster, receiver_cluster)`` decisions.  The conversion of that
order into actual times — and therefore into a makespan — is performed by a
single function, :func:`evaluate_order`, so that all heuristics are compared
under exactly the same cost model:

* a coordinator may start a transmission only once it *has* the message and
  is not busy injecting a previous one (its *ready time* ``RT``);
* a transmission from cluster ``i`` to cluster ``j`` started at ``t`` keeps
  the sender busy until ``t + g_{i,j}(m)`` and delivers the message to ``j``'s
  coordinator at ``t + g_{i,j}(m) + L_{i,j}``;
* a cluster starts its local broadcast as soon as it performs no further
  inter-cluster sends (paper §3), so its *completion time* is its final ready
  time plus its intra-cluster broadcast time ``T_i``;
* the **makespan** is the largest completion time over all clusters.

This is also where the "blocking" behaviour discussed for FEF comes from: a
heuristic may *decide* that a cluster should send before it actually holds the
message, but the timing model delays the transmission until the message is
available — exactly the phenomenon the ECEF family was designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Sequence

from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (costs has no deps on us)
    from repro.core.costs import GridCostCache


@dataclass(frozen=True)
class ScheduledTransfer:
    """One inter-cluster transmission of the broadcast schedule.

    Attributes
    ----------
    sender, receiver:
        Cluster indices of the two coordinators involved.
    start_time:
        Time at which the sender's coordinator starts injecting the message.
    sender_release_time:
        ``start_time + g``: when the sender may start another transmission.
    arrival_time:
        ``start_time + g + L``: when the receiver's coordinator holds the
        message.
    gap, latency:
        The pLogP parameters used for this transfer (seconds).
    """

    sender: int
    receiver: int
    start_time: float
    sender_release_time: float
    arrival_time: float
    gap: float
    latency: float

    def __post_init__(self) -> None:
        if self.sender == self.receiver:
            raise ValueError("a transfer cannot have the same sender and receiver")
        check_non_negative(self.start_time, "start_time")
        if self.sender_release_time < self.start_time:
            raise ValueError("sender_release_time must be >= start_time")
        if self.arrival_time < self.sender_release_time:
            raise ValueError("arrival_time must be >= sender_release_time")


@dataclass
class BroadcastSchedule:
    """A fully timed inter-cluster broadcast schedule.

    Instances are produced by :func:`evaluate_order`; they are immutable in
    spirit (nothing mutates them after construction) and expose the quantities
    the experiments need: per-cluster arrival times, local-broadcast start
    times, completion times and the overall makespan.

    Attributes
    ----------
    root:
        Index of the cluster whose coordinator initially holds the message.
    num_clusters:
        Number of clusters in the grid the schedule was computed for.
    message_size:
        Message size in bytes the schedule was evaluated at.
    transfers:
        The timed inter-cluster transfers, in the order they were decided.
    arrival_times:
        ``arrival_times[c]`` is when cluster ``c``'s coordinator first holds
        the message (0 for the root).
    local_start_times:
        When each cluster starts its local broadcast (its final ready time).
    completion_times:
        ``local_start_times[c] + T_c`` for every cluster.
    heuristic_name:
        Name of the heuristic that produced the schedule (informational).
    """

    root: int
    num_clusters: int
    message_size: float
    transfers: list[ScheduledTransfer]
    arrival_times: list[float]
    local_start_times: list[float]
    completion_times: list[float]
    heuristic_name: str = ""
    _sends_index: dict[int, list[ScheduledTransfer]] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _receive_index: dict[int, ScheduledTransfer] | None = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def makespan(self) -> float:
        """Total broadcast time: the largest per-cluster completion time."""
        return max(self.completion_times)

    @property
    def inter_cluster_makespan(self) -> float:
        """Time at which the last coordinator receives the message."""
        return max(self.arrival_times)

    @property
    def order(self) -> list[tuple[int, int]]:
        """The (sender, receiver) decision sequence behind this schedule."""
        return [(t.sender, t.receiver) for t in self.transfers]

    def _build_indexes(self) -> None:
        """One O(n) pass building both per-cluster lookup maps.

        ``analysis/gantt.py`` calls :meth:`sends_of` for every cluster, which
        with a linear scan per call is O(n²) overall; the lazy maps make the
        whole sweep linear while keeping construction cost at zero for the
        (many) schedules that are only ever asked for their makespan.
        """
        sends: dict[int, list[ScheduledTransfer]] = {}
        receives: dict[int, ScheduledTransfer] = {}
        for transfer in self.transfers:
            sends.setdefault(transfer.sender, []).append(transfer)
            receives[transfer.receiver] = transfer
        self._sends_index = sends
        self._receive_index = receives

    def sends_of(self, cluster_id: int) -> list[ScheduledTransfer]:
        """All transfers emitted by ``cluster_id``, in schedule order."""
        if self._sends_index is None:
            self._build_indexes()
        return list(self._sends_index.get(cluster_id, ()))

    def receive_of(self, cluster_id: int) -> ScheduledTransfer | None:
        """The transfer that delivered the message to ``cluster_id``.

        Returns ``None`` for the root cluster.
        """
        if self._receive_index is None:
            self._build_indexes()
        return self._receive_index.get(cluster_id)

    def validate(self) -> None:
        """Check the structural invariants of a correct broadcast schedule.

        * every non-root cluster receives the message exactly once;
        * the root never receives it;
        * every sender already held the message when its transfer started;
        * no coordinator performs two overlapping sends;
        * completion times are consistent with arrivals and local starts.

        Raises
        ------
        ValueError
            If any invariant is violated.
        """
        received: dict[int, float] = {self.root: 0.0}
        busy_until: dict[int, float] = {self.root: 0.0}
        for transfer in self.transfers:
            if transfer.receiver == self.root:
                raise ValueError("the root cluster must never receive the message")
            if transfer.receiver in received:
                raise ValueError(
                    f"cluster {transfer.receiver} receives the message more than once"
                )
            if transfer.sender not in received:
                raise ValueError(
                    f"cluster {transfer.sender} sends before receiving the message"
                )
            tolerance = 1e-12
            if transfer.start_time + tolerance < received[transfer.sender]:
                raise ValueError(
                    f"cluster {transfer.sender} starts sending at {transfer.start_time} "
                    f"before holding the message at {received[transfer.sender]}"
                )
            if transfer.start_time + tolerance < busy_until[transfer.sender]:
                raise ValueError(
                    f"cluster {transfer.sender} starts a send at {transfer.start_time} "
                    f"while busy until {busy_until[transfer.sender]}"
                )
            busy_until[transfer.sender] = transfer.sender_release_time
            received[transfer.receiver] = transfer.arrival_time
            busy_until[transfer.receiver] = transfer.arrival_time
        missing = set(range(self.num_clusters)) - set(received)
        if missing:
            raise ValueError(f"clusters {sorted(missing)} never receive the message")
        for cluster in range(self.num_clusters):
            if self.completion_times[cluster] + 1e-12 < self.local_start_times[cluster]:
                raise ValueError(
                    f"cluster {cluster} completes before starting its local broadcast"
                )
            if self.local_start_times[cluster] + 1e-12 < self.arrival_times[cluster]:
                raise ValueError(
                    f"cluster {cluster} starts its local broadcast before the message arrives"
                )

    def summary(self) -> str:
        """A short human-readable description of the schedule."""
        lines = [
            f"schedule produced by {self.heuristic_name or 'unknown heuristic'} "
            f"(root=cluster {self.root}, {self.num_clusters} clusters, "
            f"message={self.message_size:.0f} B)",
            f"  makespan: {self.makespan * 1e3:.3f} ms "
            f"(inter-cluster phase: {self.inter_cluster_makespan * 1e3:.3f} ms)",
        ]
        for transfer in self.transfers:
            lines.append(
                f"  cluster {transfer.sender} -> cluster {transfer.receiver}: "
                f"start {transfer.start_time * 1e3:.3f} ms, "
                f"arrival {transfer.arrival_time * 1e3:.3f} ms"
            )
        return "\n".join(lines)


def evaluate_order(
    grid: Grid,
    message_size: float,
    root: int,
    order: Sequence[tuple[int, int]],
    *,
    heuristic_name: str = "",
    broadcast_times: Sequence[float] | None = None,
    costs: "GridCostCache | None" = None,
) -> BroadcastSchedule:
    """Turn an ordered list of (sender, receiver) decisions into a timed schedule.

    Parameters
    ----------
    grid:
        The grid topology providing ``L_{i,j}``, ``g_{i,j}(m)`` and ``T_i``.
    message_size:
        Message size in bytes.
    root:
        Cluster index of the broadcast root.
    order:
        The decision sequence.  Every non-root cluster must appear exactly
        once as a receiver, and senders must already be informed (their
        receive must appear earlier in the sequence, or they must be the
        root).
    heuristic_name:
        Recorded on the resulting schedule for reporting purposes.
    broadcast_times:
        Optional pre-computed ``T_i`` values (one per cluster).  When omitted
        they are queried from ``costs`` (if given) or from the grid; passing
        them is a useful optimisation for Monte-Carlo loops that evaluate
        many heuristics on one grid.
    costs:
        Optional shared :class:`~repro.core.costs.GridCostCache` for the same
        grid and message size; when given, all gap/latency/broadcast reads
        come from its dense matrices instead of per-pair grid queries.

    Returns
    -------
    BroadcastSchedule
        The fully timed schedule (already consistent with
        :meth:`BroadcastSchedule.validate`).
    """
    check_non_negative(message_size, "message_size")
    num_clusters = grid.num_clusters
    if not 0 <= root < num_clusters:
        raise ValueError(f"root must be a valid cluster index, got {root}")
    order = list(order)
    _check_order(order, root, num_clusters)

    if costs is not None and not costs.matches(grid, message_size):
        raise ValueError("costs was computed for a different grid or message size")
    if broadcast_times is None:
        broadcast_times = (
            costs.broadcast_list() if costs is not None
            else grid.broadcast_times(message_size)
        )
    else:
        broadcast_times = list(broadcast_times)
        if len(broadcast_times) != num_clusters:
            raise ValueError(
                f"broadcast_times must have {num_clusters} entries, "
                f"got {len(broadcast_times)}"
            )

    ready: dict[int, float] = {root: 0.0}
    arrival: dict[int, float] = {root: 0.0}
    transfers: list[ScheduledTransfer] = []
    for sender, receiver in order:
        if costs is not None:
            gap = costs.gap_of(sender, receiver)
            latency = costs.latency_of(sender, receiver)
        else:
            gap = grid.gap(sender, receiver, message_size)
            latency = grid.latency(sender, receiver)
        start = ready[sender]
        release = start + gap
        arrive = release + latency
        ready[sender] = release
        ready[receiver] = arrive
        arrival[receiver] = arrive
        transfers.append(
            ScheduledTransfer(
                sender=sender,
                receiver=receiver,
                start_time=start,
                sender_release_time=release,
                arrival_time=arrive,
                gap=gap,
                latency=latency,
            )
        )

    arrival_times = [arrival[c] for c in range(num_clusters)]
    local_start_times = [ready[c] for c in range(num_clusters)]
    completion_times = [
        local_start_times[c] + broadcast_times[c] for c in range(num_clusters)
    ]
    schedule = BroadcastSchedule(
        root=root,
        num_clusters=num_clusters,
        message_size=message_size,
        transfers=transfers,
        arrival_times=arrival_times,
        local_start_times=local_start_times,
        completion_times=completion_times,
        heuristic_name=heuristic_name,
    )
    return schedule


def _check_order(order: Iterable[tuple[int, int]], root: int, num_clusters: int) -> None:
    """Structural validation of a decision sequence (before timing it)."""
    informed = {root}
    received: set[int] = set()
    for position, pair in enumerate(order):
        if len(pair) != 2:
            raise ValueError(f"order entry {position} is not a (sender, receiver) pair")
        sender, receiver = pair
        for name, value in (("sender", sender), ("receiver", receiver)):
            if isinstance(value, bool) or not isinstance(value, int):
                raise TypeError(f"{name} at position {position} must be an int")
            if not 0 <= value < num_clusters:
                raise ValueError(
                    f"{name} {value} at position {position} is not a valid cluster index"
                )
        if sender == receiver:
            raise ValueError(f"entry {position} sends from cluster {sender} to itself")
        if sender not in informed:
            raise ValueError(
                f"entry {position}: cluster {sender} sends before being informed"
            )
        if receiver in informed:
            raise ValueError(
                f"entry {position}: cluster {receiver} is already informed"
            )
        informed.add(receiver)
        received.add(receiver)
    expected = set(range(num_clusters)) - {root}
    missing = expected - received
    if missing:
        raise ValueError(f"clusters {sorted(missing)} never receive the message")
