"""Exhaustive / branch-and-bound search for the optimal broadcast schedule.

Finding the optimal broadcast tree of a heterogeneous system is NP-complete
and the number of possible schedules is exponential in the number of clusters
(paper §1), which is why the paper replaces the true optimum by the
"global minimum" over the evaluated heuristics when computing hit rates
(Figure 4).  For *small* grids, however, the optimum is reachable by
enumeration, and having it available lets the test-suite assert that the
heuristics are never better than optimal and lets users calibrate the
hit-rate proxy on small instances.

The search enumerates the same decision space as the greedy heuristics (at
every step an informed cluster sends to a waiting one) with a simple
branch-and-bound pruning on the makespan lower bound.
"""

from __future__ import annotations

from repro.core.base import SchedulingHeuristic, SchedulingState

#: Above this many clusters OptimalSearch refuses to run by default — the
#: decision space grows super-exponentially (n! · Catalan-like factors).
DEFAULT_MAX_CLUSTERS = 7


class OptimalSearch(SchedulingHeuristic):
    """Exhaustive branch-and-bound over sender/receiver decision sequences.

    Parameters
    ----------
    max_clusters:
        Safety limit; scheduling a larger grid raises :class:`ValueError`
        instead of silently running for hours.
    """

    key = "optimal"
    display_name = "Optimal"

    def __init__(self, *, max_clusters: int = DEFAULT_MAX_CLUSTERS) -> None:
        if isinstance(max_clusters, bool) or not isinstance(max_clusters, int):
            raise TypeError("max_clusters must be an int")
        if max_clusters < 1:
            raise ValueError(f"max_clusters must be >= 1, got {max_clusters}")
        self.max_clusters = max_clusters

    # The generic SchedulingHeuristic flow works unchanged: `build_order`
    # runs the search and replays the best decision sequence on the state.
    # The safety limit is enforced in _completed_state (fail-fast, before the
    # cost matrices are built and cached) and again in build_order for
    # callers that drive a state directly.

    def _ensure_within_limit(self, num_clusters: int) -> None:
        if num_clusters > self.max_clusters:
            raise ValueError(
                f"OptimalSearch is limited to {self.max_clusters} clusters "
                f"(got {num_clusters}); raise max_clusters explicitly if you "
                "really want an exhaustive search"
            )

    def _completed_state(self, grid, message_size, root, costs, vectorized):
        self._ensure_within_limit(grid.num_clusters)
        return super()._completed_state(grid, message_size, root, costs, vectorized)

    def build_order(self, state: SchedulingState) -> None:
        self._ensure_within_limit(state.grid.num_clusters)
        best_order, _ = self._search(state.grid, state.message_size, state.root, state)
        for sender, receiver in best_order:
            state.commit(sender, receiver)

    # -- the actual search ---------------------------------------------------------

    def _search(
        self,
        grid: Grid,
        message_size: float,
        root: int,
        state: SchedulingState,
    ) -> tuple[list[tuple[int, int]], float]:
        num_clusters = grid.num_clusters
        broadcast_times = state.broadcast_times
        # Cheapest incoming transfer per cluster, precomputed once: the seed
        # recomputed this O(n) minimum for every waiting cluster at every
        # node of the search tree.
        cheapest_incoming = state.costs.min_incoming()
        best_makespan = float("inf")
        best_order: list[tuple[int, int]] = []

        def lower_bound(ready: dict[int, float], waiting: frozenset[int]) -> float:
            """A makespan lower bound for the current partial schedule.

            Every informed cluster will at least finish its local broadcast
            after its current ready time; every waiting cluster must still
            receive the message through its cheapest incoming edge from *any*
            other cluster, no earlier than the smallest current ready time.
            """
            bound = 0.0
            min_ready = min(ready.values())
            for cluster, ready_time in ready.items():
                bound = max(bound, ready_time + broadcast_times[cluster])
            for cluster in waiting:
                bound = max(
                    bound,
                    min_ready + cheapest_incoming[cluster] + broadcast_times[cluster],
                )
            return bound

        def recurse(
            ready: dict[int, float],
            waiting: frozenset[int],
            order: list[tuple[int, int]],
        ) -> None:
            nonlocal best_makespan, best_order
            if not waiting:
                makespan = max(
                    ready[cluster] + broadcast_times[cluster]
                    for cluster in range(num_clusters)
                )
                if makespan < best_makespan:
                    best_makespan = makespan
                    best_order = list(order)
                return
            if lower_bound(ready, waiting) >= best_makespan:
                return
            # Explore cheaper completions first so the bound tightens quickly.
            candidates = sorted(
                (
                    (ready[sender] + state.transfer_time(sender, receiver), sender, receiver)
                    for sender in ready
                    for receiver in waiting
                ),
                key=lambda item: item[0],
            )
            for _, sender, receiver in candidates:
                gap = state.gap(sender, receiver)
                latency = state.latency(sender, receiver)
                start = ready[sender]
                new_ready = dict(ready)
                new_ready[sender] = start + gap
                new_ready[receiver] = start + gap + latency
                order.append((sender, receiver))
                recurse(new_ready, waiting - {receiver}, order)
                order.pop()

        initial_ready = {root: 0.0}
        initial_waiting = frozenset(range(num_clusters)) - {root}
        recurse(initial_ready, initial_waiting, [])
        return best_order, best_makespan
