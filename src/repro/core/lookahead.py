"""Lookahead functions for the ECEF-LA family.

Bhat's Early Completion Edge First with lookahead (ECEF-LA) picks the pair
``(i, j)`` minimising ``RT_i + g_{i,j}(m) + L_{i,j} + F_j`` where ``F_j``
estimates how useful cluster ``j`` will be *after* it joins the informed set.
The paper proposes two grid-aware lookahead functions (ECEF-LAt / ECEF-LAT)
that fold in the intra-cluster broadcast time ``T_k``; Bhat additionally
suggested average-based variants, which we implement too for the ablation
benchmark (DESIGN.md item A1).

A lookahead function receives the scheduling state and the candidate receiver
``j`` (still in ``B``) and returns a float in seconds.  By convention it is
evaluated over the *other* clusters of ``B`` (``k != j``); when ``j`` is the
last waiting cluster the lookahead is 0, which never changes the selected pair
because ``F_j`` is then a constant offset.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import SchedulingState

#: Type alias for lookahead functions.
LookaheadFunction = Callable[[SchedulingState, int], float]


def no_lookahead(state: SchedulingState, candidate: int) -> float:
    """``F_j = 0``: degenerates ECEF-LA into plain ECEF."""
    return 0.0


def min_edge_lookahead(state: SchedulingState, candidate: int) -> float:
    """Bhat's original lookahead: ``F_j = min_{k in B} (g_{j,k}(m) + L_{j,k})``.

    It measures how quickly ``j`` could retransmit the message to some other
    waiting cluster, i.e. the *utility* of promoting ``j`` to the informed
    set.
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return min(state.transfer_time(candidate, k) for k in others)


def average_latency_lookahead(state: SchedulingState, candidate: int) -> float:
    """Alternative suggested by Bhat: the average cost from ``j`` to ``B``.

    ``F_j = mean_{k in B} (g_{j,k}(m) + L_{j,k})``; a smoother utility
    estimate that is less sensitive to one exceptionally close cluster.
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return sum(state.transfer_time(candidate, k) for k in others) / len(others)


def average_informed_lookahead(state: SchedulingState, candidate: int) -> float:
    """Bhat's other suggestion: average cost between sets A∪{j} and B∖{j}.

    Estimates the quality of the *global* dissemination capacity if ``j`` is
    promoted: the mean transfer time from every (would-be) informed cluster to
    every remaining waiting cluster.
    """
    informed = list(state.ready_time) + [candidate]
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    total = 0.0
    count = 0
    for source in informed:
        for target in others:
            if source == target:
                continue
            total += state.transfer_time(source, target)
            count += 1
    return total / count if count else 0.0


def grid_aware_min_lookahead(state: SchedulingState, candidate: int) -> float:
    """The paper's ECEF-LAt lookahead (min, lowercase "t").

    ``F_j = min_{k in B} (g_{j,k}(m) + L_{j,k} + T_k)``: pick receivers that
    can quickly reach some cluster *and* let that cluster finish its local
    broadcast soon.
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return min(
        state.transfer_time(candidate, k) + state.broadcast_time(k) for k in others
    )


def grid_aware_max_lookahead(state: SchedulingState, candidate: int) -> float:
    """The paper's ECEF-LAT lookahead (max, uppercase "T").

    ``F_j = max_{k in B} (g_{j,k}(m) + L_{j,k} + T_k)``: favour receivers that
    are well placed to serve the *slowest* remaining cluster, counting on
    inter-cluster overlap to hide the extra cost (paper §5.2).
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return max(
        state.transfer_time(candidate, k) + state.broadcast_time(k) for k in others
    )


#: Named registry of lookahead functions, used by the ablation benchmark.
LOOKAHEAD_FUNCTIONS: dict[str, LookaheadFunction] = {
    "none": no_lookahead,
    "min_edge": min_edge_lookahead,
    "average_latency": average_latency_lookahead,
    "average_informed": average_informed_lookahead,
    "grid_aware_min": grid_aware_min_lookahead,
    "grid_aware_max": grid_aware_max_lookahead,
}


def get_lookahead(name: str) -> LookaheadFunction:
    """Look a lookahead function up by name.

    Raises
    ------
    ValueError
        If the name is unknown; the message lists the valid options.
    """
    try:
        return LOOKAHEAD_FUNCTIONS[name]
    except KeyError as exc:
        known = ", ".join(sorted(LOOKAHEAD_FUNCTIONS))
        raise ValueError(f"unknown lookahead {name!r}; known: {known}") from exc
