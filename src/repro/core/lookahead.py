"""Lookahead functions for the ECEF-LA family.

Bhat's Early Completion Edge First with lookahead (ECEF-LA) picks the pair
``(i, j)`` minimising ``RT_i + g_{i,j}(m) + L_{i,j} + F_j`` where ``F_j``
estimates how useful cluster ``j`` will be *after* it joins the informed set.
The paper proposes two grid-aware lookahead functions (ECEF-LAt / ECEF-LAT)
that fold in the intra-cluster broadcast time ``T_k``; Bhat additionally
suggested average-based variants, which we implement too for the ablation
benchmark (DESIGN.md item A1).

A lookahead function receives the scheduling state and the candidate receiver
``j`` (still in ``B``) and returns a float in seconds.  By convention it is
evaluated over the *other* clusters of ``B`` (``k != j``); when ``j`` is the
last waiting cluster the lookahead is 0, which never changes the selected pair
because ``F_j`` is then a constant offset.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.base import SchedulingState

#: Type alias for lookahead functions.
LookaheadFunction = Callable[[SchedulingState, int], float]

#: Type alias for vectorized lookaheads: ``state -> F`` where ``F`` is a
#: length-``num_clusters`` array whose entries are only meaningful at the
#: indices of the pending set ``B``.
VectorizedLookahead = Callable[[SchedulingState], np.ndarray]


def no_lookahead(state: SchedulingState, candidate: int) -> float:
    """``F_j = 0``: degenerates ECEF-LA into plain ECEF."""
    return 0.0


def min_edge_lookahead(state: SchedulingState, candidate: int) -> float:
    """Bhat's original lookahead: ``F_j = min_{k in B} (g_{j,k}(m) + L_{j,k})``.

    It measures how quickly ``j`` could retransmit the message to some other
    waiting cluster, i.e. the *utility* of promoting ``j`` to the informed
    set.
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return min(state.transfer_time(candidate, k) for k in others)


def average_latency_lookahead(state: SchedulingState, candidate: int) -> float:
    """Alternative suggested by Bhat: the average cost from ``j`` to ``B``.

    ``F_j = mean_{k in B} (g_{j,k}(m) + L_{j,k})``; a smoother utility
    estimate that is less sensitive to one exceptionally close cluster.
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return sum(state.transfer_time(candidate, k) for k in others) / len(others)


def average_informed_lookahead(state: SchedulingState, candidate: int) -> float:
    """Bhat's other suggestion: average cost between sets A∪{j} and B∖{j}.

    Estimates the quality of the *global* dissemination capacity if ``j`` is
    promoted: the mean transfer time from every (would-be) informed cluster to
    every remaining waiting cluster.
    """
    informed = list(state.ready_time) + [candidate]
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    total = 0.0
    count = 0
    for source in informed:
        for target in others:
            if source == target:
                continue
            total += state.transfer_time(source, target)
            count += 1
    return total / count if count else 0.0


def grid_aware_min_lookahead(state: SchedulingState, candidate: int) -> float:
    """The paper's ECEF-LAt lookahead (min, lowercase "t").

    ``F_j = min_{k in B} (g_{j,k}(m) + L_{j,k} + T_k)``: pick receivers that
    can quickly reach some cluster *and* let that cluster finish its local
    broadcast soon.
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return min(
        state.transfer_time(candidate, k) + state.broadcast_time(k) for k in others
    )


def grid_aware_max_lookahead(state: SchedulingState, candidate: int) -> float:
    """The paper's ECEF-LAT lookahead (max, uppercase "T").

    ``F_j = max_{k in B} (g_{j,k}(m) + L_{j,k} + T_k)``: favour receivers that
    are well placed to serve the *slowest* remaining cluster, counting on
    inter-cluster overlap to hide the extra cost (paper §5.2).
    """
    others = [k for k in state.waiting if k != candidate]
    if not others:
        return 0.0
    return max(
        state.transfer_time(candidate, k) + state.broadcast_time(k) for k in others
    )


# -- vectorized counterparts -------------------------------------------------------
#
# Each function computes the whole ``F`` column for the current pending set in
# a handful of masked matrix reductions instead of one Python call per
# (candidate, other) pair.  The min/max variants produce bit-identical values
# to their scalar twins (IEEE min/max are exact regardless of reduction
# order); the average variants may differ by one or two ULPs because NumPy
# uses pairwise summation, which is tighter than the scalar left-to-right sum.


def _vec_no_lookahead(state: SchedulingState) -> np.ndarray:
    return np.zeros(state.grid.num_clusters)


def _vec_min_edge_lookahead(state: SchedulingState) -> np.ndarray:
    pending = state.pending_indices
    out = np.zeros(state.grid.num_clusters)
    if pending.size > 1:
        sub = state.costs.transfer[np.ix_(pending, pending)]
        np.fill_diagonal(sub, np.inf)
        out[pending] = sub.min(axis=1)
    return out


def _vec_average_latency_lookahead(state: SchedulingState) -> np.ndarray:
    pending = state.pending_indices
    out = np.zeros(state.grid.num_clusters)
    if pending.size > 1:
        # The diagonal of the transfer matrix is zero, so the row sums over
        # the pending sub-matrix already exclude the candidate itself.
        sub = state.costs.transfer[np.ix_(pending, pending)]
        out[pending] = sub.sum(axis=1) / (pending.size - 1)
    return out


def _vec_average_informed_lookahead(state: SchedulingState) -> np.ndarray:
    pending = state.pending_indices
    out = np.zeros(state.grid.num_clusters)
    if pending.size > 1:
        informed = state.informed_indices
        transfer = state.costs.transfer
        # Sum over A × B per pending target, then correct per candidate j:
        # drop column j (j is never a target of its own lookahead) and add
        # row j over B∖{j} (zero diagonal keeps the sum exact).
        column_sums = transfer[np.ix_(informed, pending)].sum(axis=0)
        row_sums = transfer[np.ix_(pending, pending)].sum(axis=1)
        total = column_sums.sum()
        count = (informed.size + 1) * (pending.size - 1)
        out[pending] = (total - column_sums + row_sums) / count
    return out


def _grid_aware_matrix(state: SchedulingState, pending: np.ndarray) -> np.ndarray:
    return (
        state.costs.transfer[np.ix_(pending, pending)]
        + state.costs.broadcast[pending][None, :]
    )


def _vec_grid_aware_min_lookahead(state: SchedulingState) -> np.ndarray:
    pending = state.pending_indices
    out = np.zeros(state.grid.num_clusters)
    if pending.size > 1:
        sub = _grid_aware_matrix(state, pending)
        np.fill_diagonal(sub, np.inf)
        out[pending] = sub.min(axis=1)
    return out


def _vec_grid_aware_max_lookahead(state: SchedulingState) -> np.ndarray:
    pending = state.pending_indices
    out = np.zeros(state.grid.num_clusters)
    if pending.size > 1:
        sub = _grid_aware_matrix(state, pending)
        np.fill_diagonal(sub, -np.inf)
        out[pending] = sub.max(axis=1)
    return out


#: Vectorized twins of the scalar lookaheads, keyed by the scalar function.
VECTORIZED_LOOKAHEADS: dict[LookaheadFunction, VectorizedLookahead] = {
    no_lookahead: _vec_no_lookahead,
    min_edge_lookahead: _vec_min_edge_lookahead,
    average_latency_lookahead: _vec_average_latency_lookahead,
    average_informed_lookahead: _vec_average_informed_lookahead,
    grid_aware_min_lookahead: _vec_grid_aware_min_lookahead,
    grid_aware_max_lookahead: _vec_grid_aware_max_lookahead,
}


def vectorized_lookahead(fn: LookaheadFunction) -> VectorizedLookahead | None:
    """The vectorized twin of a scalar lookahead, or ``None`` if unknown.

    Custom lookaheads registered by third parties fall back to per-candidate
    scalar evaluation inside the (still vectorized) pair-selection loop.
    """
    return VECTORIZED_LOOKAHEADS.get(fn)


#: Named registry of lookahead functions, used by the ablation benchmark.
LOOKAHEAD_FUNCTIONS: dict[str, LookaheadFunction] = {
    "none": no_lookahead,
    "min_edge": min_edge_lookahead,
    "average_latency": average_latency_lookahead,
    "average_informed": average_informed_lookahead,
    "grid_aware_min": grid_aware_min_lookahead,
    "grid_aware_max": grid_aware_max_lookahead,
}


def get_lookahead(name: str) -> LookaheadFunction:
    """Look a lookahead function up by name.

    Raises
    ------
    ValueError
        If the name is unknown; the message lists the valid options.
    """
    try:
        return LOOKAHEAD_FUNCTIONS[name]
    except KeyError as exc:
        known = ", ".join(sorted(LOOKAHEAD_FUNCTIONS))
        raise ValueError(f"unknown lookahead {name!r}; known: {known}") from exc
