"""Batched scheduling: run one heuristic on many grids simultaneously.

The Monte-Carlo studies of the paper (Figures 1–4) schedule the *same*
heuristic on thousands of independent random grids of identical size.  Doing
that one grid at a time leaves NumPy's per-call overhead as the dominant cost
for small grids — at 10 clusters a masked ``argmin`` over a 10×10 matrix is
pure dispatch overhead.  This module stacks the per-grid cost matrices of a
whole batch into ``(K, n, n)`` arrays and advances **all K grids one selection
round at a time**, so every NumPy call does K grids' worth of work.

The batched kernels mirror the per-grid selection rules exactly — the same
score formulas, the same row-major first-occurrence tie-breaking — so a
batched run produces bit-identical makespans to the per-grid engines (scalar
and vectorized) for every paper heuristic and min/max lookahead; the
equivalence test-suite asserts exactly that.  The two *average*-based
ablation lookaheads reduce via BLAS matmuls whose summation order differs
from the other engines', so their scores can differ by ULPs and agreement is
only exact when no two candidate scores are within ULPs of each other (they
are covered by fixed-seed tests instead of the hypothesis sweep).

Only the heuristics of the paper's Monte-Carlo line-up have batched kernels
(ECEF, the ECEF-LA family with registered lookaheads, FEF, BottomUp, Flat
Tree, and Mixed by delegation).  :func:`batched_makespans` returns ``None``
for anything else — e.g. :class:`~repro.core.optimal.OptimalSearch` or a
custom heuristic — and callers fall back to the per-grid path.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.core.base import SchedulingHeuristic
from repro.core.bottomup import BottomUp
from repro.core.costs import GridCostCache
from repro.core.ecef import ECEF, ECEFLookahead
from repro.core.fef import FastestEdgeFirst
from repro.core.flat_tree import FlatTreeHeuristic
from repro.core.lookahead import (
    average_informed_lookahead,
    average_latency_lookahead,
    grid_aware_max_lookahead,
    grid_aware_min_lookahead,
    min_edge_lookahead,
    no_lookahead,
)
from repro.core.mixed import MixedStrategy


class BatchedGridCosts:
    """Stacked cost matrices of ``K`` same-sized grids.

    Every batched kernel round touches each stacked cell a constant number
    of times, so the study runtime prices a Monte-Carlo chunk at
    ``iterations * clusters**2`` cells when it sizes chunks and picks an
    executor lane (:mod:`repro.runtime.chunking`).

    Attributes
    ----------
    num_grids, num_clusters:
        The stack dimensions ``K`` and ``n``.
    gap, latency, transfer:
        ``(K, n, n)`` arrays (zero diagonals).
    broadcast:
        ``(K, n)`` array of local broadcast times.
    """

    def __init__(self, caches: Sequence[GridCostCache]) -> None:
        if not caches:
            raise ValueError("BatchedGridCosts needs at least one grid")
        sizes = {cache.num_clusters for cache in caches}
        if len(sizes) != 1:
            raise ValueError(
                f"all grids of a batch must have the same size, got {sorted(sizes)}"
            )
        self.num_grids = len(caches)
        self.num_clusters = sizes.pop()
        self.gap = np.stack([cache.gap for cache in caches])
        self.latency = np.stack([cache.latency for cache in caches])
        self.transfer = np.stack([cache.transfer for cache in caches])
        self.broadcast = np.stack([cache.broadcast for cache in caches])
        self._transfer_plus_broadcast: np.ndarray | None = None

    def to_arrays(self) -> dict[str, np.ndarray]:
        """The four stacked matrices, ready for an
        :class:`~repro.runtime.transport.ArrayShipment` (the derived
        ``transfer_plus_broadcast`` stays lazy — it is cheaper to recompute
        than to ship)."""
        return {
            "gap": self.gap,
            "latency": self.latency,
            "transfer": self.transfer,
            "broadcast": self.broadcast,
        }

    @classmethod
    def from_arrays(cls, arrays: dict[str, np.ndarray]) -> "BatchedGridCosts":
        """Rebuild a stack from :meth:`to_arrays` output (zero-copy: the
        arrays — typically views into a shared-memory shipment — are adopted,
        not copied)."""
        stack = cls.__new__(cls)
        stack.gap = arrays["gap"]
        stack.latency = arrays["latency"]
        stack.transfer = arrays["transfer"]
        stack.broadcast = arrays["broadcast"]
        stack.num_grids, stack.num_clusters = stack.gap.shape[:2]
        stack._transfer_plus_broadcast = None
        return stack

    @property
    def transfer_plus_broadcast(self) -> np.ndarray:
        """``g_{i,j}(m) + L_{i,j} + T_j`` per grid (grid-aware lookaheads)."""
        if self._transfer_plus_broadcast is None:
            self._transfer_plus_broadcast = self.transfer + self.broadcast[:, None, :]
        return self._transfer_plus_broadcast



class _BatchedState:
    """Ready times and A/B membership of ``K`` grids advancing in lockstep."""

    def __init__(self, costs: BatchedGridCosts, root: int) -> None:
        if not 0 <= root < costs.num_clusters:
            raise ValueError(f"root must be a valid cluster index, got {root}")
        K, n = costs.num_grids, costs.num_clusters
        self.costs = costs
        self.root = root
        self.rt = np.zeros((K, n))
        self.informed = np.zeros((K, n), dtype=bool)
        self.informed[:, root] = True
        self.pending = ~self.informed
        self.informed_f = self.informed.astype(float)
        self.pending_f = self.pending.astype(float)
        self._grid_index = np.arange(K)
        self._scores = np.empty((K, n, n))
        self._diag = np.arange(n)

    # Every round, each of the K grids commits its own (sender, receiver).
    def commit(self, senders: np.ndarray, receivers: np.ndarray) -> None:
        k = self._grid_index
        gap = self.costs.gap[k, senders, receivers]
        latency = self.costs.latency[k, senders, receivers]
        start = self.rt[k, senders]
        release = start + gap
        self.rt[k, senders] = release
        self.rt[k, receivers] = release + latency
        self.informed[k, receivers] = True
        self.pending[k, receivers] = False
        self.informed_f[k, receivers] = 1.0
        self.pending_f[k, receivers] = 0.0

    def masked_argmin(self, scores: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-grid argmin over A×B; first occurrence in row-major order.

        Row-major first-occurrence matches the scalar loops' tie-breaking
        (senders ascending, receivers ascending, strict comparisons).
        """
        scores[~self.informed, :] = np.inf
        scores.transpose(0, 2, 1)[~self.pending, :] = np.inf
        n = self.costs.num_clusters
        flat = scores.reshape(self.costs.num_grids, n * n).argmin(axis=1)
        return flat // n, flat % n

    def makespans(self) -> np.ndarray:
        """``max_c (RT_c + T_c)`` per grid — identical to the timed schedule."""
        return (self.rt + self.costs.broadcast).max(axis=1)


# -- batched lookahead columns -------------------------------------------------------
#
# Each returns the (K, n) matrix of F_j values for the current pending sets;
# entries at non-pending j are garbage and are masked away by the selection.
# They are only called while every grid still has >= 2 pending clusters (the
# final round skips the lookahead: with one candidate left F_j is a constant
# offset, exactly the scalar convention of returning 0).

_BatchedLookahead = Callable[[_BatchedState], np.ndarray]


def _batch_zero(state: _BatchedState) -> np.ndarray:
    return np.zeros((state.costs.num_grids, state.costs.num_clusters))


def _batch_min_edge(state: _BatchedState) -> np.ndarray:
    masked = np.where(state.pending[:, None, :], state.costs.transfer, np.inf)
    masked[:, state._diag, state._diag] = np.inf
    return masked.min(axis=2)


def _batch_average_latency(state: _BatchedState) -> np.ndarray:
    # Zero diagonal => the row sums over pending columns already exclude j.
    sums = np.matmul(state.costs.transfer, state.pending_f[:, :, None])[:, :, 0]
    others = state.pending_f.sum(axis=1) - 1.0
    return sums / others[:, None]


def _batch_average_informed(state: _BatchedState) -> np.ndarray:
    transfer = state.costs.transfer
    column_sums = np.matmul(state.informed_f[:, None, :], transfer)[:, 0, :]
    row_sums = np.matmul(transfer, state.pending_f[:, :, None])[:, :, 0]
    total = (column_sums * state.pending_f).sum(axis=1)
    informed_count = state.informed_f.sum(axis=1)
    others = state.pending_f.sum(axis=1) - 1.0
    count = (informed_count + 1.0) * others
    return (total[:, None] - column_sums + row_sums) / count[:, None]


def _batch_grid_aware_min(state: _BatchedState) -> np.ndarray:
    masked = np.where(
        state.pending[:, None, :], state.costs.transfer_plus_broadcast, np.inf
    )
    masked[:, state._diag, state._diag] = np.inf
    return masked.min(axis=2)


def _batch_grid_aware_max(state: _BatchedState) -> np.ndarray:
    masked = np.where(
        state.pending[:, None, :], state.costs.transfer_plus_broadcast, -np.inf
    )
    masked[:, state._diag, state._diag] = -np.inf
    return masked.max(axis=2)


_BATCHED_LOOKAHEADS: dict[object, _BatchedLookahead] = {
    no_lookahead: _batch_zero,
    min_edge_lookahead: _batch_min_edge,
    average_latency_lookahead: _batch_average_latency,
    average_informed_lookahead: _batch_average_informed,
    grid_aware_min_lookahead: _batch_grid_aware_min,
    grid_aware_max_lookahead: _batch_grid_aware_max,
}


# -- batched heuristic drivers -------------------------------------------------------


def _run_ecef_family(
    costs: BatchedGridCosts, root: int, lookahead: _BatchedLookahead | None
) -> np.ndarray:
    state = _BatchedState(costs, root)
    n = costs.num_clusters
    for round_index in range(n - 1):
        scores = np.add(state.rt[:, :, None], costs.transfer, out=state._scores)
        pending_count = n - 1 - round_index
        if lookahead is not None and pending_count > 1:
            scores += lookahead(state)[:, None, :]
        state.commit(*state.masked_argmin(scores))
    return state.makespans()


def _run_fef(costs: BatchedGridCosts, root: int, weight: str) -> np.ndarray:
    weights = costs.latency if weight == "latency" else costs.transfer
    state = _BatchedState(costs, root)
    for _ in range(costs.num_clusters - 1):
        np.copyto(state._scores, weights)
        state.commit(*state.masked_argmin(state._scores))
    return state.makespans()


def _run_bottom_up(
    costs: BatchedGridCosts, root: int, use_ready_time: bool
) -> np.ndarray:
    state = _BatchedState(costs, root)
    k = state._grid_index
    for _ in range(costs.num_clusters - 1):
        scores = np.add(
            costs.transfer, costs.broadcast[:, None, :], out=state._scores
        )
        if use_ready_time:
            scores += state.rt[:, :, None]
        scores[~state.informed, :] = np.inf
        cheapest = scores.min(axis=1)
        cheapest_sender = scores.argmin(axis=1)
        cheapest[~state.pending] = -np.inf
        receivers = cheapest.argmax(axis=1)
        state.commit(cheapest_sender[k, receivers], receivers)
    return state.makespans()


def _run_flat_tree(
    costs: BatchedGridCosts, root: int, heuristic: FlatTreeHeuristic
) -> np.ndarray:
    targets = heuristic.resolve_targets(root, costs.num_clusters)
    state = _BatchedState(costs, root)
    K = costs.num_grids
    senders = np.full(K, root)
    for target in targets:
        state.commit(senders, np.full(K, target))
    return state.makespans()


def _resolve_kernel(heuristic: SchedulingHeuristic, num_clusters: int):
    """The batched kernel for ``heuristic`` as ``(costs, root) -> array``.

    Returns ``None`` when the heuristic has no batched kernel.  Dispatch is
    on the *exact* type — a subclass may override ``build_order``, so it must
    take the per-grid path rather than silently inheriting the parent's
    kernel.
    """
    kind = type(heuristic)
    if kind is MixedStrategy:
        return _resolve_kernel(heuristic.choose(num_clusters), num_clusters)
    if kind is ECEFLookahead:
        lookahead = _BATCHED_LOOKAHEADS.get(heuristic.lookahead)
        if lookahead is None:
            return None
        return lambda costs, root: _run_ecef_family(costs, root, lookahead)
    if kind is ECEF:
        return lambda costs, root: _run_ecef_family(costs, root, None)
    if kind is FastestEdgeFirst:
        return lambda costs, root: _run_fef(costs, root, heuristic.weight)
    if kind is BottomUp:
        return lambda costs, root: _run_bottom_up(
            costs, root, heuristic.use_ready_time
        )
    if kind is FlatTreeHeuristic:
        return lambda costs, root: _run_flat_tree(costs, root, heuristic)
    return None


def has_batched_kernel(heuristic: SchedulingHeuristic, num_clusters: int) -> bool:
    """Whether :func:`batched_makespans` would handle this heuristic.

    Lets callers avoid stacking a :class:`BatchedGridCosts` at all when every
    configured heuristic needs the per-grid fallback anyway.
    """
    return _resolve_kernel(heuristic, num_clusters) is not None


def batched_makespans(
    heuristic: SchedulingHeuristic,
    costs: BatchedGridCosts,
    *,
    root: int = 0,
) -> np.ndarray | None:
    """Makespans of ``heuristic`` on every grid of the batch, or ``None``.

    ``None`` means the heuristic has no batched kernel (exhaustive search,
    custom heuristics, custom lookahead callables); the caller should fall
    back to scheduling grid by grid.
    """
    kernel = _resolve_kernel(heuristic, costs.num_clusters)
    if kernel is None:
        return None
    return kernel(costs, root)
