"""The heuristic interface and the shared A/B scheduling state."""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from repro.core.schedule import BroadcastSchedule, evaluate_order
from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative


@dataclass
class SchedulingState:
    """The A/B set formalism of paper §3, shared by all greedy heuristics.

    ``A`` holds the clusters whose coordinator already has (or is about to
    have) the message, together with the *ready time* ``RT_i`` at which that
    coordinator may start a new transmission.  ``B`` holds the clusters still
    waiting for the message.  Picking a pair moves the receiver from ``B`` to
    ``A`` and updates the sender's ready time by the gap of the transmission.

    The state also pre-computes, for the message size at hand, the gap
    ``g_{i,j}(m)`` of every cluster pair and the local broadcast times
    ``T_i`` so the heuristics' O(|A|·|B|) inner loops only do float reads.
    """

    grid: Grid
    message_size: float
    root: int
    ready_time: dict[int, float] = field(init=False)
    waiting: set[int] = field(init=False)
    order: list[tuple[int, int]] = field(init=False)
    _gap: list[list[float]] = field(init=False, repr=False)
    _latency: list[list[float]] = field(init=False, repr=False)
    _broadcast: list[float] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        check_non_negative(self.message_size, "message_size")
        n = self.grid.num_clusters
        if not 0 <= self.root < n:
            raise ValueError(f"root must be a valid cluster index, got {self.root}")
        self.ready_time = {self.root: 0.0}
        self.waiting = set(range(n)) - {self.root}
        self.order = []
        self._gap = [[0.0] * n for _ in range(n)]
        self._latency = [[0.0] * n for _ in range(n)]
        for i in range(n):
            for j in range(n):
                if i == j:
                    continue
                self._gap[i][j] = self.grid.gap(i, j, self.message_size)
                self._latency[i][j] = self.grid.latency(i, j)
        self._broadcast = self.grid.broadcast_times(self.message_size)

    # -- cached pLogP reads -------------------------------------------------------

    def gap(self, i: int, j: int) -> float:
        """Cached ``g_{i,j}(m)``."""
        return self._gap[i][j]

    def latency(self, i: int, j: int) -> float:
        """Cached ``L_{i,j}``."""
        return self._latency[i][j]

    def transfer_time(self, i: int, j: int) -> float:
        """Cached ``g_{i,j}(m) + L_{i,j}``."""
        return self._gap[i][j] + self._latency[i][j]

    def broadcast_time(self, i: int) -> float:
        """Cached intra-cluster broadcast time ``T_i``."""
        return self._broadcast[i]

    @property
    def broadcast_times(self) -> list[float]:
        """All cached ``T_i`` values (index order)."""
        return list(self._broadcast)

    # -- set manipulation -----------------------------------------------------------

    @property
    def informed(self) -> list[int]:
        """The clusters of set ``A``, sorted for determinism."""
        return sorted(self.ready_time)

    @property
    def pending(self) -> list[int]:
        """The clusters of set ``B``, sorted for determinism."""
        return sorted(self.waiting)

    @property
    def done(self) -> bool:
        """Whether every cluster has been scheduled to receive the message."""
        return not self.waiting

    def completion_estimate(self, i: int, j: int) -> float:
        """``RT_i + g_{i,j}(m) + L_{i,j}``: the ECEF selection quantity."""
        return self.ready_time[i] + self.transfer_time(i, j)

    def commit(self, sender: int, receiver: int) -> None:
        """Record the decision (sender -> receiver) and update both ready times."""
        if sender not in self.ready_time:
            raise ValueError(f"cluster {sender} is not informed yet")
        if receiver not in self.waiting:
            raise ValueError(f"cluster {receiver} is not waiting for the message")
        gap = self.gap(sender, receiver)
        latency = self.latency(sender, receiver)
        start = self.ready_time[sender]
        self.ready_time[sender] = start + gap
        self.ready_time[receiver] = start + gap + latency
        self.waiting.remove(receiver)
        self.order.append((sender, receiver))

    def to_schedule(self, heuristic_name: str = "") -> BroadcastSchedule:
        """Time the accumulated decision order into a full schedule."""
        return evaluate_order(
            self.grid,
            self.message_size,
            self.root,
            self.order,
            heuristic_name=heuristic_name,
            broadcast_times=self._broadcast,
        )


class SchedulingHeuristic(ABC):
    """Base class of every inter-cluster broadcast scheduling heuristic.

    Subclasses implement :meth:`build_order`, which receives a fresh
    :class:`SchedulingState` and must drive it to completion (every cluster
    informed).  The public entry point :meth:`schedule` wraps that order into
    a timed :class:`~repro.core.schedule.BroadcastSchedule` using the shared
    cost model, so all heuristics are compared on an equal footing.
    """

    #: Registry key (lowercase, no spaces).  Set by subclasses.
    key: str = ""
    #: Display name matching the paper's figures.  Set by subclasses.
    display_name: str = ""

    @abstractmethod
    def build_order(self, state: SchedulingState) -> None:
        """Drive ``state`` until :attr:`SchedulingState.done` is true."""

    def schedule(
        self,
        grid: Grid,
        message_size: float,
        *,
        root: int = 0,
    ) -> BroadcastSchedule:
        """Compute a timed broadcast schedule for ``grid``.

        Parameters
        ----------
        grid:
            The grid topology.
        message_size:
            Message size in bytes.
        root:
            Index of the cluster initially holding the message.
        """
        state = SchedulingState(grid=grid, message_size=message_size, root=root)
        if not state.done:
            self.build_order(state)
        if not state.done:
            raise RuntimeError(
                f"heuristic {self.name!r} finished without informing every cluster"
            )
        return state.to_schedule(heuristic_name=self.name)

    def makespan(self, grid: Grid, message_size: float, *, root: int = 0) -> float:
        """Convenience shortcut: the makespan of :meth:`schedule`."""
        return self.schedule(grid, message_size, root=root).makespan

    @property
    def name(self) -> str:
        """The display name of the heuristic."""
        return self.display_name or type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def run_heuristics(
    heuristics: Sequence[SchedulingHeuristic],
    grid: Grid,
    message_size: float,
    *,
    root: int = 0,
) -> dict[str, BroadcastSchedule]:
    """Run several heuristics on the same grid and collect their schedules.

    The per-grid broadcast times are computed once and shared across
    evaluations, which is what makes the 10 000-iteration Monte-Carlo loops
    of the paper tractable in pure Python.
    """
    results: dict[str, BroadcastSchedule] = {}
    for heuristic in heuristics:
        results[heuristic.name] = heuristic.schedule(grid, message_size, root=root)
    return results
