"""The heuristic interface and the shared A/B scheduling state."""

from __future__ import annotations

from abc import ABC, abstractmethod
from bisect import bisect_left, insort
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.costs import GridCostCache
from repro.core.schedule import BroadcastSchedule, evaluate_order
from repro.topology.grid import Grid
from repro.utils.validation import check_non_negative


@dataclass
class SchedulingState:
    """The A/B set formalism of paper §3, shared by all greedy heuristics.

    ``A`` holds the clusters whose coordinator already has (or is about to
    have) the message, together with the *ready time* ``RT_i`` at which that
    coordinator may start a new transmission.  ``B`` holds the clusters still
    waiting for the message.  Picking a pair moves the receiver from ``B`` to
    ``A`` and updates the sender's ready time by the gap of the transmission.

    The pLogP quantities (``g_{i,j}(m)``, ``L_{i,j}``, ``T_i``) are read from
    a :class:`~repro.core.costs.GridCostCache` that is shared across every
    heuristic evaluated on the same grid and message size, so the inner loops
    only do array reads and the matrices are built once per grid rather than
    once per heuristic.

    Parameters
    ----------
    grid, message_size, root:
        The scheduling problem.
    costs:
        Optional pre-built cost cache; defaults to the shared per-grid cache.
    vectorized:
        When true (the default) the heuristics drive the state through the
        masked NumPy argmin kernels below; when false they fall back to the
        scalar reference loops, which exist so the equivalence of the two
        engines stays testable.
    """

    # Equality compares the problem and the decision state (as in the seed
    # implementation); the cache and the NumPy mirrors are implementation
    # details (and ndarray __eq__ would break the generated __eq__ anyway).
    grid: Grid
    message_size: float
    root: int
    costs: GridCostCache | None = field(default=None, compare=False)
    vectorized: bool = field(default=True, compare=False)
    ready_time: dict[int, float] = field(init=False)
    waiting: set[int] = field(init=False)
    order: list[tuple[int, int]] = field(init=False)
    _informed_sorted: list[int] = field(init=False, repr=False, compare=False)
    _pending_sorted: list[int] = field(init=False, repr=False, compare=False)
    _rt: np.ndarray = field(init=False, repr=False, compare=False)
    _informed_mask: np.ndarray = field(init=False, repr=False, compare=False)
    _pending_mask: np.ndarray = field(init=False, repr=False, compare=False)
    _scores: np.ndarray = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        check_non_negative(self.message_size, "message_size")
        n = self.grid.num_clusters
        if not 0 <= self.root < n:
            raise ValueError(f"root must be a valid cluster index, got {self.root}")
        if self.costs is None:
            self.costs = GridCostCache.for_grid(self.grid, self.message_size)
        elif not self.costs.matches(self.grid, self.message_size):
            raise ValueError(
                "costs was computed for a different grid or message size"
            )
        self.ready_time = {self.root: 0.0}
        self.waiting = set(range(n)) - {self.root}
        self.order = []
        self._informed_sorted = [self.root]
        self._pending_sorted = [c for c in range(n) if c != self.root]
        self._rt = np.zeros(n, dtype=float)
        self._informed_mask = np.zeros(n, dtype=bool)
        self._informed_mask[self.root] = True
        self._pending_mask = ~self._informed_mask
        self._scores = np.empty((n, n), dtype=float)

    # -- cached pLogP reads -------------------------------------------------------

    def gap(self, i: int, j: int) -> float:
        """Cached ``g_{i,j}(m)``."""
        return self.costs.gap_of(i, j)

    def latency(self, i: int, j: int) -> float:
        """Cached ``L_{i,j}``."""
        return self.costs.latency_of(i, j)

    def transfer_time(self, i: int, j: int) -> float:
        """Cached ``g_{i,j}(m) + L_{i,j}``."""
        return self.costs.transfer_time(i, j)

    def broadcast_time(self, i: int) -> float:
        """Cached intra-cluster broadcast time ``T_i``."""
        return self.costs.broadcast_time(i)

    @property
    def broadcast_times(self) -> list[float]:
        """All cached ``T_i`` values (index order)."""
        return self.costs.broadcast_list()

    # -- set manipulation -----------------------------------------------------------

    @property
    def informed(self) -> list[int]:
        """The clusters of set ``A``, in increasing index order.

        The sorted list is maintained incrementally on every
        :meth:`commit` instead of being re-sorted per property access, which
        the O(n³) selection loops of the heuristics do O(n²) times.
        """
        return list(self._informed_sorted)

    @property
    def pending(self) -> list[int]:
        """The clusters of set ``B``, in increasing index order (incremental)."""
        return list(self._pending_sorted)

    @property
    def informed_indices(self) -> np.ndarray:
        """Set ``A`` as a sorted integer array (vectorized consumers)."""
        return np.asarray(self._informed_sorted, dtype=np.intp)

    @property
    def pending_indices(self) -> np.ndarray:
        """Set ``B`` as a sorted integer array (vectorized consumers)."""
        return np.asarray(self._pending_sorted, dtype=np.intp)

    @property
    def done(self) -> bool:
        """Whether every cluster has been scheduled to receive the message."""
        return not self.waiting

    def completion_estimate(self, i: int, j: int) -> float:
        """``RT_i + g_{i,j}(m) + L_{i,j}``: the ECEF selection quantity."""
        return self.ready_time[i] + self.costs.transfer_time(i, j)

    def commit(self, sender: int, receiver: int) -> None:
        """Record the decision (sender -> receiver) and update both ready times."""
        if sender not in self.ready_time:
            raise ValueError(f"cluster {sender} is not informed yet")
        if receiver not in self.waiting:
            raise ValueError(f"cluster {receiver} is not waiting for the message")
        gap = self.costs.gap_of(sender, receiver)
        latency = self.costs.latency_of(sender, receiver)
        start = self.ready_time[sender]
        release = start + gap
        arrival = release + latency
        self.ready_time[sender] = release
        self.ready_time[receiver] = arrival
        self.waiting.remove(receiver)
        self.order.append((sender, receiver))
        insort(self._informed_sorted, receiver)
        del self._pending_sorted[bisect_left(self._pending_sorted, receiver)]
        self._rt[sender] = release
        self._rt[receiver] = arrival
        self._informed_mask[receiver] = True
        self._pending_mask[receiver] = False

    # -- vectorized selection kernels ------------------------------------------------
    #
    # All kernels reduce a masked (sender, receiver) score matrix with
    # np.argmin / np.argmax.  NumPy returns the *first* occurrence of the
    # extremum in row-major order, which is exactly the tie-breaking of the
    # scalar reference loops (senders ascending, receivers ascending, strict
    # comparisons) — so both engines pick identical pairs, ties included.

    def _masked_argmin(self, scores: np.ndarray) -> tuple[int, int]:
        scores[~self._informed_mask, :] = np.inf
        scores[:, ~self._pending_mask] = np.inf
        flat = int(np.argmin(scores))
        n = scores.shape[1]
        return flat // n, flat % n

    def select_min_completion(self) -> tuple[int, int]:
        """ECEF: argmin over A×B of ``RT_i + g_{i,j}(m) + L_{i,j}``."""
        scores = self._scores
        np.add(self._rt[:, None], self.costs.transfer, out=scores)
        return self._masked_argmin(scores)

    def select_min_completion_plus(self, receiver_bonus: np.ndarray) -> tuple[int, int]:
        """ECEF-LA family: argmin of ``RT_i + g_{i,j}(m) + L_{i,j} + F_j``.

        ``receiver_bonus`` is a length-``n`` vector of lookahead values
        ``F_j``; entries outside ``B`` are ignored (masked to +inf).
        """
        scores = self._scores
        np.add(self._rt[:, None], self.costs.transfer, out=scores)
        scores += receiver_bonus
        return self._masked_argmin(scores)

    def select_min_edge(self, weights: np.ndarray) -> tuple[int, int]:
        """FEF: argmin over A×B of a static edge-weight matrix."""
        scores = self._scores
        np.copyto(scores, weights)
        return self._masked_argmin(scores)

    def select_bottom_up(self, *, use_ready_time: bool = False) -> tuple[int, int]:
        """BottomUp: max over B of the per-receiver cheapest completion.

        ``argmax_{j in B} min_{i in A} (g_{i,j}(m) + L_{i,j} + T_j [+ RT_i])``,
        returned as the (cheapest sender, selected receiver) pair.
        """
        scores = self._scores
        np.add(self.costs.transfer, self.costs.broadcast[None, :], out=scores)
        if use_ready_time:
            scores += self._rt[:, None]
        scores[~self._informed_mask, :] = np.inf
        cheapest = scores.min(axis=0)
        cheapest_sender = scores.argmin(axis=0)
        cheapest[~self._pending_mask] = -np.inf
        receiver = int(np.argmax(cheapest))
        return int(cheapest_sender[receiver]), receiver

    def to_schedule(self, heuristic_name: str = "") -> BroadcastSchedule:
        """Time the accumulated decision order into a full schedule."""
        return evaluate_order(
            self.grid,
            self.message_size,
            self.root,
            self.order,
            heuristic_name=heuristic_name,
            costs=self.costs,
        )


class SchedulingHeuristic(ABC):
    """Base class of every inter-cluster broadcast scheduling heuristic.

    Subclasses implement :meth:`build_order`, which receives a fresh
    :class:`SchedulingState` and must drive it to completion (every cluster
    informed).  The public entry point :meth:`schedule` wraps that order into
    a timed :class:`~repro.core.schedule.BroadcastSchedule` using the shared
    cost model, so all heuristics are compared on an equal footing.
    """

    #: Registry key (lowercase, no spaces).  Set by subclasses.
    key: str = ""
    #: Display name matching the paper's figures.  Set by subclasses.
    display_name: str = ""

    @abstractmethod
    def build_order(self, state: SchedulingState) -> None:
        """Drive ``state`` until :attr:`SchedulingState.done` is true."""

    def _completed_state(
        self,
        grid: Grid,
        message_size: float,
        root: int,
        costs: GridCostCache | None,
        vectorized: bool,
    ) -> SchedulingState:
        """Build a fresh state and drive it to completion via ``build_order``."""
        state = SchedulingState(
            grid=grid,
            message_size=message_size,
            root=root,
            costs=costs,
            vectorized=vectorized,
        )
        if not state.done:
            self.build_order(state)
        if not state.done:
            raise RuntimeError(
                f"heuristic {self.name!r} finished without informing every cluster"
            )
        return state

    def schedule(
        self,
        grid: Grid,
        message_size: float,
        *,
        root: int = 0,
        costs: GridCostCache | None = None,
        vectorized: bool = True,
    ) -> BroadcastSchedule:
        """Compute a timed broadcast schedule for ``grid``.

        Parameters
        ----------
        grid:
            The grid topology.
        message_size:
            Message size in bytes.
        root:
            Index of the cluster initially holding the message.
        costs:
            Optional shared :class:`~repro.core.costs.GridCostCache`;
            defaults to the per-grid shared cache.
        vectorized:
            Use the NumPy selection kernels (default) or the scalar reference
            loops.
        """
        state = self._completed_state(grid, message_size, root, costs, vectorized)
        return state.to_schedule(heuristic_name=self.name)

    def makespan(
        self,
        grid: Grid,
        message_size: float,
        *,
        root: int = 0,
        costs: GridCostCache | None = None,
        vectorized: bool = True,
    ) -> float:
        """The makespan of :meth:`schedule`, without materialising the schedule.

        The state already tracks every cluster's final ready time, so the
        makespan is ``max_c (RT_c + T_c)`` — identical to timing the decision
        order but skipping the per-transfer bookkeeping.  Monte-Carlo loops
        that only need makespans should call this instead of
        ``schedule(...).makespan``.
        """
        state = self._completed_state(grid, message_size, root, costs, vectorized)
        return float(np.max(state._rt + state.costs.broadcast))

    @property
    def name(self) -> str:
        """The display name of the heuristic."""
        return self.display_name or type(self).__name__

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}()"


def run_heuristics(
    heuristics: Sequence[SchedulingHeuristic],
    grid: Grid,
    message_size: float,
    *,
    root: int = 0,
    costs: GridCostCache | None = None,
) -> dict[str, BroadcastSchedule]:
    """Run several heuristics on the same grid and collect their schedules.

    The per-grid cost matrices and broadcast times are computed once (in the
    shared :class:`~repro.core.costs.GridCostCache`) and reused by every
    heuristic and by the schedule timing, which is what makes the
    10 000-iteration Monte-Carlo loops of the paper tractable.
    """
    if costs is None:
        costs = GridCostCache.for_grid(grid, message_size)
    results: dict[str, BroadcastSchedule] = {}
    for heuristic in heuristics:
        results[heuristic.name] = heuristic.schedule(
            grid, message_size, root=root, costs=costs
        )
    return results
