"""The mixed strategy recommended in paper §6.

"Because the efficiency of the scheduling heuristics depends on the number of
interconnected clusters, we suggest a mixed strategy, where the scheduling
heuristic is defined according to the problem size": performance-oriented
heuristics (ECEF / ECEF-LA) for small grids, ECEF-LAT for grids with many
clusters.
"""

from __future__ import annotations

from repro.core.base import SchedulingHeuristic, SchedulingState
from repro.core.ecef import ECEFLookahead


class MixedStrategy(SchedulingHeuristic):
    """Pick the heuristic according to the number of clusters.

    Parameters
    ----------
    threshold:
        Grids with at most this many clusters use the *small-grid* heuristic;
        larger grids use the *large-grid* one.  The default of 10 matches the
        paper's observation that hit rates of the performance-oriented
        heuristics start degrading beyond the ~10-cluster grids in production
        at the time (GRID5000 had 10 sites).
    small_grid, large_grid:
        The two delegate heuristics; default to ECEF-LA and ECEF-LAT as the
        paper recommends.
    """

    key = "mixed"
    display_name = "Mixed"

    def __init__(
        self,
        *,
        threshold: int = 10,
        small_grid: SchedulingHeuristic | None = None,
        large_grid: SchedulingHeuristic | None = None,
    ) -> None:
        if isinstance(threshold, bool) or not isinstance(threshold, int):
            raise TypeError("threshold must be an int")
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        self.threshold = threshold
        self.small_grid = small_grid if small_grid is not None else ECEFLookahead.bhat()
        self.large_grid = (
            large_grid if large_grid is not None else ECEFLookahead.grid_aware_max()
        )

    def choose(self, num_clusters: int) -> SchedulingHeuristic:
        """The delegate heuristic used for a grid of ``num_clusters`` clusters."""
        if num_clusters <= self.threshold:
            return self.small_grid
        return self.large_grid

    def build_order(self, state: SchedulingState) -> None:
        delegate = self.choose(state.grid.num_clusters)
        delegate.build_order(state)
