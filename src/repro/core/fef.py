"""Fastest Edge First (Bhat et al., paper §4.2)."""

from __future__ import annotations

from repro.core.base import SchedulingHeuristic, SchedulingState


class FastestEdgeFirst(SchedulingHeuristic):
    """Greedy selection of the globally fastest edge from A to B.

    At every round the heuristic scans all pairs ``(i in A, j in B)`` and
    picks the one with the smallest edge weight ``T_{i,j}``.  Following the
    paper ("usually, this edge weight corresponds to the communication
    latency between the processes"), the default weight is the **latency**
    ``L_{i,j}`` alone, which is exactly why FEF under-performs on grids: the
    gap — the term that actually dominates a 1 MB wide-area transfer — never
    enters its decisions.  Passing ``weight="transfer_time"`` uses
    ``g_{i,j}(m) + L_{i,j}`` instead (the variant the ablation benchmark
    compares against).

    The receiver is transferred to ``A`` immediately, which — as the paper
    points out — is optimistic: the cluster may be selected as a sender
    before the message has actually arrived, in which case the real
    execution (and our shared timing model in
    :func:`repro.core.schedule.evaluate_order`) blocks until it does.  The
    strategy "maximises the number of sender processes", trading realism for
    source multiplication.
    """

    key = "fef"
    display_name = "FEF"

    #: Valid edge-weight definitions.
    WEIGHTS = ("latency", "transfer_time")

    def __init__(self, *, weight: str = "latency") -> None:
        if weight not in self.WEIGHTS:
            raise ValueError(
                f"weight must be one of {self.WEIGHTS}, got {weight!r}"
            )
        self.weight = weight

    def _edge_weight(self, state: SchedulingState, sender: int, receiver: int) -> float:
        if self.weight == "latency":
            return state.latency(sender, receiver)
        return state.transfer_time(sender, receiver)

    def build_order(self, state: SchedulingState) -> None:
        if state.vectorized:
            weights = (
                state.costs.latency
                if self.weight == "latency"
                else state.costs.transfer
            )
            while not state.done:
                state.commit(*state.select_min_edge(weights))
            return
        # Scalar reference path (kept for engine-equivalence testing).
        while not state.done:
            best_pair: tuple[int, int] | None = None
            best_weight = float("inf")
            for sender in state.informed:
                for receiver in state.pending:
                    weight = self._edge_weight(state, sender, receiver)
                    if weight < best_weight:
                        best_weight = weight
                        best_pair = (sender, receiver)
            assert best_pair is not None
            state.commit(*best_pair)
