"""Early Completion Edge First and its lookahead variants (paper §4.3–§5.2).

This module hosts three of the paper's heuristics behind two classes:

* :class:`ECEF` — Bhat's Early Completion Edge First: minimise
  ``RT_i + g_{i,j}(m) + L_{i,j}``.
* :class:`ECEFLookahead` — the lookahead family: minimise
  ``RT_i + g_{i,j}(m) + L_{i,j} + F_j`` for a pluggable lookahead ``F``.
  Instantiated with :func:`repro.core.lookahead.min_edge_lookahead` it is
  Bhat's ECEF-LA; with :func:`~repro.core.lookahead.grid_aware_min_lookahead`
  it is the paper's ECEF-LAt; with
  :func:`~repro.core.lookahead.grid_aware_max_lookahead` it is ECEF-LAT.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SchedulingHeuristic, SchedulingState
from repro.core.lookahead import (
    LookaheadFunction,
    get_lookahead,
    grid_aware_max_lookahead,
    grid_aware_min_lookahead,
    min_edge_lookahead,
    vectorized_lookahead,
)


class ECEF(SchedulingHeuristic):
    """Early Completion Edge First (Bhat et al., paper §4.3).

    Tracks the ready time ``RT_i`` of every informed cluster and picks the
    pair ``(i, j)`` whose transmission can *finish* earliest::

        minimise  RT_i + g_{i,j}(m) + L_{i,j}

    compared to FEF this avoids selecting senders that do not yet hold the
    message, so the resulting schedules never block.
    """

    key = "ecef"
    display_name = "ECEF"

    def build_order(self, state: SchedulingState) -> None:
        if state.vectorized:
            while not state.done:
                state.commit(*state.select_min_completion())
            return
        # Scalar reference path (kept for engine-equivalence testing).
        while not state.done:
            best_pair: tuple[int, int] | None = None
            best_completion = float("inf")
            for sender in state.informed:
                for receiver in state.pending:
                    completion = state.completion_estimate(sender, receiver)
                    if completion < best_completion:
                        best_completion = completion
                        best_pair = (sender, receiver)
            assert best_pair is not None
            state.commit(*best_pair)


class ECEFLookahead(SchedulingHeuristic):
    """ECEF with a lookahead evaluation function (paper §4.4, §5.1, §5.2).

    The selected pair minimises ``RT_i + g_{i,j}(m) + L_{i,j} + F_j`` where
    ``F_j`` scores the usefulness of promoting cluster ``j``.

    Parameters
    ----------
    lookahead:
        Either a callable ``(state, candidate) -> float`` or the name of a
        registered lookahead (see
        :data:`repro.core.lookahead.LOOKAHEAD_FUNCTIONS`).
    key, display_name:
        Override the registry key / display name; the named constructors
        below set them to the paper's labels.
    """

    def __init__(
        self,
        lookahead: LookaheadFunction | str = min_edge_lookahead,
        *,
        key: str = "ecef_la",
        display_name: str = "ECEF-LA",
    ) -> None:
        if isinstance(lookahead, str):
            lookahead = get_lookahead(lookahead)
        if not callable(lookahead):
            raise TypeError("lookahead must be callable or a registered name")
        self.lookahead = lookahead
        self.key = key
        self.display_name = display_name

    def build_order(self, state: SchedulingState) -> None:
        if state.vectorized:
            vector_fn = vectorized_lookahead(self.lookahead)
            num_clusters = state.grid.num_clusters
            while not state.done:
                if vector_fn is not None:
                    bonus = vector_fn(state)
                else:
                    # Custom lookahead: evaluate per candidate, but keep the
                    # O(|A|·|B|) pair selection vectorized.
                    bonus = np.zeros(num_clusters)
                    for candidate in state.pending:
                        bonus[candidate] = self.lookahead(state, candidate)
                state.commit(*state.select_min_completion_plus(bonus))
            return
        # Scalar reference path (kept for engine-equivalence testing).
        while not state.done:
            best_pair: tuple[int, int] | None = None
            best_score = float("inf")
            pending = state.pending
            lookahead_values = {j: self.lookahead(state, j) for j in pending}
            for sender in state.informed:
                for receiver in pending:
                    score = (
                        state.completion_estimate(sender, receiver)
                        + lookahead_values[receiver]
                    )
                    if score < best_score:
                        best_score = score
                        best_pair = (sender, receiver)
            assert best_pair is not None
            state.commit(*best_pair)

    # -- named constructors matching the paper's heuristics -------------------------

    @classmethod
    def bhat(cls) -> "ECEFLookahead":
        """Bhat's ECEF-LA: ``F_j = min_k (g_{j,k}(m) + L_{j,k})``."""
        return cls(min_edge_lookahead, key="ecef_la", display_name="ECEF-LA")

    @classmethod
    def grid_aware_min(cls) -> "ECEFLookahead":
        """The paper's ECEF-LAt: ``F_j = min_k (g_{j,k}(m) + L_{j,k} + T_k)``."""
        return cls(
            grid_aware_min_lookahead, key="ecef_lat_min", display_name="ECEF-LAt"
        )

    @classmethod
    def grid_aware_max(cls) -> "ECEFLookahead":
        """The paper's ECEF-LAT: ``F_j = max_k (g_{j,k}(m) + L_{j,k} + T_k)``."""
        return cls(
            grid_aware_max_lookahead, key="ecef_lat_max", display_name="ECEF-LAT"
        )
