"""Name-based factory for scheduling heuristics.

The experiment harness, the CLI and the benchmarks all refer to heuristics by
short keys; this module maps those keys to constructor callables and defines
the canonical heuristic line-up of the paper's figures.
"""

from __future__ import annotations

from typing import Callable

from repro.core.base import SchedulingHeuristic
from repro.core.bottomup import BottomUp
from repro.core.ecef import ECEF, ECEFLookahead
from repro.core.fef import FastestEdgeFirst
from repro.core.flat_tree import FlatTreeHeuristic
from repro.core.mixed import MixedStrategy
from repro.core.optimal import OptimalSearch

HeuristicFactory = Callable[[], SchedulingHeuristic]

_REGISTRY: dict[str, HeuristicFactory] = {
    "flat_tree": FlatTreeHeuristic,
    "fef": FastestEdgeFirst,
    "ecef": ECEF,
    "ecef_la": ECEFLookahead.bhat,
    "ecef_lat_min": ECEFLookahead.grid_aware_min,
    "ecef_lat_max": ECEFLookahead.grid_aware_max,
    "bottom_up": BottomUp,
    "mixed": MixedStrategy,
    "optimal": OptimalSearch,
}

#: The seven heuristics plotted in Figures 1, 2, 5 and 6 of the paper, in the
#: legend order of Figure 1.
PAPER_HEURISTICS: tuple[str, ...] = (
    "flat_tree",
    "fef",
    "ecef",
    "ecef_la",
    "ecef_lat_max",
    "ecef_lat_min",
    "bottom_up",
)

#: The four ECEF-like heuristics compared in Figures 3 and 4.
ECEF_FAMILY: tuple[str, ...] = (
    "ecef",
    "ecef_la",
    "ecef_lat_max",
    "ecef_lat_min",
)


def available_heuristics() -> list[str]:
    """The sorted list of registered heuristic keys."""
    return sorted(_REGISTRY)


def get_heuristic(key: str) -> SchedulingHeuristic:
    """Instantiate the heuristic registered under ``key``.

    Keys are case-insensitive and accept dashes in place of underscores, so
    ``"ECEF-LA"`` resolves like ``"ecef_la"``.

    Raises
    ------
    ValueError
        If the key is unknown; the message lists the registered keys.
    """
    normalised = key.strip().lower().replace("-", "_").replace(" ", "_")
    try:
        factory = _REGISTRY[normalised]
    except KeyError as exc:
        known = ", ".join(available_heuristics())
        raise ValueError(f"unknown heuristic {key!r}; known keys: {known}") from exc
    return factory()


def register_heuristic(key: str, factory: HeuristicFactory, *, overwrite: bool = False) -> None:
    """Register a custom heuristic under ``key``.

    Third-party strategies registered here become usable everywhere a key is
    accepted: the experiment configuration, the hit-rate analysis and the CLI.

    Parameters
    ----------
    key:
        Registry key (normalised to lowercase with underscores).
    factory:
        Zero-argument callable returning a fresh heuristic instance.
    overwrite:
        Allow replacing an existing registration.
    """
    if not callable(factory):
        raise TypeError("factory must be callable")
    normalised = key.strip().lower().replace("-", "_").replace(" ", "_")
    if not normalised:
        raise ValueError("key must not be empty")
    if normalised in _REGISTRY and not overwrite:
        raise ValueError(f"heuristic key {key!r} is already registered")
    _REGISTRY[normalised] = factory


def instantiate(keys: "tuple[str, ...] | list[str]") -> list[SchedulingHeuristic]:
    """Instantiate several heuristics at once, preserving order."""
    return [get_heuristic(key) for key in keys]
