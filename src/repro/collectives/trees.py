"""Broadcast tree constructions.

A :class:`BroadcastTree` describes, for a set of ``size`` participants
numbered ``0 .. size-1`` (local indices inside one cluster), which participant
sends to which and in what order.  Index 0 is always the root (the cluster
coordinator).  Trees are pure structure: they know nothing about timing, which
is supplied either by the analytic cost model (:mod:`repro.collectives.cost`)
or by the discrete-event simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx


@dataclass(frozen=True)
class BroadcastTree:
    """An ordered broadcast tree over ``size`` local participants.

    Attributes
    ----------
    size:
        Number of participants (>= 1); participant 0 is the root.
    children:
        ``children[p]`` lists the participants ``p`` sends to, in send order.
        Every participant other than 0 appears exactly once across all lists.
    name:
        The construction that produced the tree ("binomial", "flat", ...).
    """

    size: int
    children: tuple[tuple[int, ...], ...]
    name: str = "custom"

    def __post_init__(self) -> None:
        if isinstance(self.size, bool) or not isinstance(self.size, int):
            raise TypeError("size must be an int")
        if self.size < 1:
            raise ValueError(f"size must be >= 1, got {self.size}")
        if len(self.children) != self.size:
            raise ValueError("children must have exactly one entry per participant")
        seen: set[int] = set()
        for parent, kids in enumerate(self.children):
            for child in kids:
                if isinstance(child, bool) or not isinstance(child, int):
                    raise TypeError("child indices must be ints")
                if not 0 <= child < self.size:
                    raise ValueError(f"child index {child} out of range")
                if child == parent:
                    raise ValueError(f"participant {parent} sends to itself")
                if child == 0:
                    raise ValueError("the root (participant 0) must not receive")
                if child in seen:
                    raise ValueError(f"participant {child} receives more than once")
                seen.add(child)
        expected = set(range(1, self.size))
        missing = expected - seen
        if missing:
            raise ValueError(f"participants {sorted(missing)} never receive the message")

    # -- structure queries -------------------------------------------------------

    def parent_of(self, participant: int) -> int | None:
        """The participant that sends to ``participant`` (None for the root)."""
        if not 0 <= participant < self.size:
            raise ValueError(f"participant {participant} out of range")
        if participant == 0:
            return None
        for parent, kids in enumerate(self.children):
            if participant in kids:
                return parent
        raise AssertionError("validated tree must contain every participant")

    def depth(self) -> int:
        """The number of hops from the root to the deepest participant."""
        depths = {0: 0}
        frontier = [0]
        while frontier:
            nxt: list[int] = []
            for parent in frontier:
                for child in self.children[parent]:
                    depths[child] = depths[parent] + 1
                    nxt.append(child)
            frontier = nxt
        return max(depths.values())

    def max_fanout(self) -> int:
        """The largest number of sends performed by a single participant."""
        return max((len(kids) for kids in self.children), default=0)

    def edges(self) -> list[tuple[int, int]]:
        """All (parent, child) edges, in the order the sends are issued."""
        result: list[tuple[int, int]] = []
        for parent, kids in enumerate(self.children):
            for child in kids:
                result.append((parent, child))
        return result

    def to_networkx(self) -> nx.DiGraph:
        """Export the tree as a directed :mod:`networkx` graph."""
        graph = nx.DiGraph(name=self.name)
        graph.add_nodes_from(range(self.size))
        for order, (parent, child) in enumerate(self.edges()):
            graph.add_edge(parent, child, order=order)
        return graph


def binomial_tree(size: int) -> BroadcastTree:
    """The binomial broadcast tree used by MagPIe and the paper.

    Round ``r`` doubles the informed set: participant ``p`` (informed in an
    earlier round) sends to ``p + 2^r`` if that participant exists.  The root
    therefore performs ``ceil(log2(size))`` sends, and the tree completes in
    that many rounds on a fully-connected homogeneous network.
    """
    _check_size(size)
    children: list[list[int]] = [[] for _ in range(size)]
    distance = 1
    while distance < size:
        for informed in range(distance):
            target = informed + distance
            if target < size:
                children[informed].append(target)
        distance *= 2
    return BroadcastTree(size=size, children=tuple(tuple(c) for c in children), name="binomial")


def flat_tree(size: int) -> BroadcastTree:
    """The root sends to every other participant, in index order."""
    _check_size(size)
    children: list[tuple[int, ...]] = [tuple(range(1, size))]
    children.extend(() for _ in range(size - 1))
    return BroadcastTree(size=size, children=tuple(children), name="flat")


def chain_tree(size: int) -> BroadcastTree:
    """Each participant forwards the message to the next one."""
    _check_size(size)
    children = tuple(
        (index + 1,) if index + 1 < size else () for index in range(size)
    )
    return BroadcastTree(size=size, children=children, name="chain")


def binary_tree(size: int) -> BroadcastTree:
    """A complete binary tree: participant ``p`` sends to ``2p+1`` and ``2p+2``."""
    _check_size(size)
    children = tuple(
        tuple(child for child in (2 * index + 1, 2 * index + 2) if child < size)
        for index in range(size)
    )
    return BroadcastTree(size=size, children=children, name="binary")


#: Named tree constructors.
TREE_BUILDERS = {
    "binomial": binomial_tree,
    "flat": flat_tree,
    "chain": chain_tree,
    "binary": binary_tree,
}


def make_tree(name: str, size: int) -> BroadcastTree:
    """Build a named tree (``"binomial"``, ``"flat"``, ``"chain"``, ``"binary"``)."""
    try:
        builder = TREE_BUILDERS[name]
    except KeyError as exc:
        known = ", ".join(sorted(TREE_BUILDERS))
        raise ValueError(f"unknown tree {name!r}; known: {known}") from exc
    return builder(size)


def _check_size(size: int) -> None:
    if isinstance(size, bool) or not isinstance(size, int):
        raise TypeError("size must be an int")
    if size < 1:
        raise ValueError(f"size must be >= 1, got {size}")
