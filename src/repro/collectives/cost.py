"""pLogP cost of executing a broadcast tree on a homogeneous cluster.

Where :mod:`repro.model.prediction` provides closed-form(ish) predictions per
tree *shape*, this module times an arbitrary :class:`BroadcastTree` edge by
edge, which the test-suite uses to cross-validate the closed forms and which
the tuning step uses for custom trees.
"""

from __future__ import annotations

from repro.collectives.trees import BroadcastTree
from repro.model.plogp import PLogPParameters
from repro.utils.validation import check_non_negative


def per_node_arrival_times(
    tree: BroadcastTree,
    params: PLogPParameters,
    message_size: float,
) -> list[float]:
    """Arrival time of the message at every participant of the tree.

    The root holds the message at time 0.  A participant that received the
    message at ``t`` performs its sends back to back: the ``k``-th (1-based)
    send starts at ``t + (k-1) * g(m)``, keeps it busy for ``g(m)`` and
    delivers ``L`` later.
    """
    check_non_negative(message_size, "message_size")
    gap = params.gap(message_size)
    latency = params.latency
    arrivals = [float("inf")] * tree.size
    arrivals[0] = 0.0
    # Process participants in arrival order so every parent is timed before
    # its children (the tree structure guarantees such an order exists).
    pending = [0]
    while pending:
        pending.sort(key=lambda p: arrivals[p])
        parent = pending.pop(0)
        base = arrivals[parent]
        for position, child in enumerate(tree.children[parent]):
            send_start = base + position * gap
            arrivals[child] = send_start + gap + latency
            pending.append(child)
    return arrivals


def predict_tree_time(
    tree: BroadcastTree,
    params: PLogPParameters,
    message_size: float,
) -> float:
    """Makespan of a broadcast over ``tree``: the latest per-node arrival."""
    if tree.size != params.num_procs:
        raise ValueError(
            f"tree has {tree.size} participants but params.num_procs is "
            f"{params.num_procs}"
        )
    if tree.size == 1:
        return 0.0
    return max(per_node_arrival_times(tree, params, message_size))
