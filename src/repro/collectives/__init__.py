"""Intra-cluster collective communication algorithms.

Inside a cluster the interconnect is homogeneous, so classic fixed-shape trees
apply.  This sub-package provides the tree *constructions* (who sends to whom,
in which order) as explicit per-node send lists:

* :func:`~repro.collectives.trees.binomial_tree` — the shape used by MagPIe
  and by the paper for every local broadcast,
* :func:`~repro.collectives.trees.flat_tree`,
* :func:`~repro.collectives.trees.chain_tree`,
* :func:`~repro.collectives.trees.binary_tree`.

Trees are consumed in two places: the analytic cost predictions of
:mod:`repro.model.prediction` (validated against each other in the tests) and
the per-node execution of :mod:`repro.mpi` on top of the discrete-event
simulator.  :mod:`repro.collectives.selector` implements the per-cluster
"fast tuning" step that picks the cheapest tree for a given cluster and
message size.
"""

from repro.collectives.trees import (
    BroadcastTree,
    binary_tree,
    binomial_tree,
    chain_tree,
    flat_tree,
    make_tree,
)
from repro.collectives.cost import predict_tree_time
from repro.collectives.selector import TunedCollective, select_best_tree

__all__ = [
    "BroadcastTree",
    "binary_tree",
    "binomial_tree",
    "chain_tree",
    "flat_tree",
    "make_tree",
    "predict_tree_time",
    "TunedCollective",
    "select_best_tree",
]
