"""Per-cluster selection of the cheapest broadcast tree ("fast tuning").

The authors' companion work (*Fast tuning of intra-cluster collective
communications*, Euro PVM/MPI 2004) selects, for every cluster and message
size, the tree shape with the smallest predicted completion time.  The
practical evaluation of the paper relies on that machinery to obtain the
``T_i`` values; this module reproduces the selection step.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.collectives.cost import predict_tree_time
from repro.collectives.trees import BroadcastTree, TREE_BUILDERS, make_tree
from repro.model.plogp import PLogPParameters
from repro.utils.validation import check_non_negative

#: Tree shapes considered by default, in tie-break preference order (the
#: binomial tree wins ties because it is what MagPIe ships).
DEFAULT_CANDIDATES: tuple[str, ...] = ("binomial", "binary", "chain", "flat")


@dataclass(frozen=True)
class TunedCollective:
    """Result of tuning one cluster for one message size.

    Attributes
    ----------
    tree:
        The winning broadcast tree.
    predicted_time:
        Its predicted completion time (seconds).
    alternatives:
        Mapping of every candidate name to its predicted time, for reporting.
    """

    tree: BroadcastTree
    predicted_time: float
    alternatives: dict[str, float]


def select_best_tree(
    params: PLogPParameters,
    message_size: float,
    *,
    candidates: tuple[str, ...] = DEFAULT_CANDIDATES,
) -> TunedCollective:
    """Pick the cheapest tree shape for a cluster and message size.

    Parameters
    ----------
    params:
        The cluster's intra-cluster pLogP parameters (``num_procs`` is the
        cluster size).
    message_size:
        Message size in bytes.
    candidates:
        Tree names to consider (must all be registered in
        :data:`repro.collectives.trees.TREE_BUILDERS`).
    """
    check_non_negative(message_size, "message_size")
    if not candidates:
        raise ValueError("candidates must not be empty")
    unknown = [name for name in candidates if name not in TREE_BUILDERS]
    if unknown:
        raise ValueError(f"unknown tree candidates: {unknown}")
    predictions: dict[str, float] = {}
    best_name: str | None = None
    for name in candidates:
        tree = make_tree(name, params.num_procs)
        predictions[name] = predict_tree_time(tree, params, message_size)
        if best_name is None or predictions[name] < predictions[best_name]:
            best_name = name
    assert best_name is not None
    return TunedCollective(
        tree=make_tree(best_name, params.num_procs),
        predicted_time=predictions[best_name],
        alternatives=predictions,
    )
