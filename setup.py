"""Thin setup.py shim.

The execution environment ships setuptools without the ``wheel`` package and
has no network access, so PEP 517 editable builds (which need to produce a
wheel) cannot run.  Keeping this shim lets ``pip install -e .`` fall back to
the legacy ``setup.py develop`` path; all project metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
