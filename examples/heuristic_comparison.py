#!/usr/bin/env python3
"""Compare every scheduling heuristic on the GRID5000 grid and on random grids.

This example reproduces, in miniature, the two halves of the paper's
evaluation:

* the *practical* side — all seven heuristics (plus the exhaustive optimum on
  a truncated grid) scheduling a 4 MB broadcast on the Table 3 topology, with
  predicted and simulated times side by side; and
* the *statistical* side — a small Monte-Carlo sweep over random grids
  (Table 2 parameter ranges) printing the mean completion time per heuristic
  and cluster count, i.e. a low-iteration Figure 1.

Run with::

    python examples/heuristic_comparison.py
"""

from __future__ import annotations

from repro import PAPER_HEURISTICS, get_heuristic
from repro.analysis.comparison import rank_heuristics
from repro.core.optimal import OptimalSearch
from repro.experiments.config import SimulationStudyConfig
from repro.experiments.report import render_series_table
from repro.experiments.simulation_study import run_simulation_study
from repro.mpi.communicator import GridCommunicator
from repro.topology.cluster import Cluster
from repro.topology.grid import Grid
from repro.topology.grid5000 import build_grid5000_topology

MESSAGE_SIZE = 4 * 1_048_576


def practical_comparison() -> None:
    """All heuristics on the 88-machine grid, predicted vs simulated."""
    grid = build_grid5000_topology()
    comm = GridCommunicator(grid)
    print(f"== 4 MB broadcast on {grid.name} ==")
    print(f"{'heuristic':<12} {'predicted (s)':>14} {'simulated (s)':>14}")
    measured: dict[str, float] = {}
    for key in PAPER_HEURISTICS:
        outcome = comm.bcast(MESSAGE_SIZE, heuristic=key)
        name = outcome.schedule.heuristic_name
        measured[name] = outcome.measured_time
        print(f"{name:<12} {outcome.predicted_time:>14.3f} {outcome.measured_time:>14.3f}")
    baseline = comm.bcast_binomial(MESSAGE_SIZE)
    print(f"{'Default LAM':<12} {'-':>14} {baseline.measured_time:>14.3f}")
    print()
    print("ranking (fastest first):")
    for position, (name, time) in enumerate(rank_heuristics(measured), start=1):
        print(f"  {position}. {name:<12} {time:.3f} s")
    print()


def optimal_on_truncated_grid() -> None:
    """Exhaustive optimum on the first five clusters of the Table 3 grid."""
    full = build_grid5000_topology()
    keep = 5
    clusters = [
        Cluster(
            cluster_id=index,
            name=cluster.name,
            size=cluster.size,
            intra_params=cluster.intra_params,
            broadcast_algorithm=cluster.broadcast_algorithm,
        )
        for index, cluster in enumerate(full.clusters[:keep])
    ]
    links = {
        (i, j): full.link(i, j) for i in range(keep) for j in range(i + 1, keep)
    }
    truncated = Grid(clusters, links, name="grid5000-truncated-5")
    optimum = OptimalSearch().schedule(truncated, MESSAGE_SIZE)
    print(f"== exhaustive optimum on {truncated.name} ==")
    print(f"optimal makespan: {optimum.makespan:.3f} s")
    for key in ("flat_tree", "ecef", "ecef_lat_max"):
        heuristic = get_heuristic(key)
        gap = heuristic.makespan(truncated, MESSAGE_SIZE) / optimum.makespan
        print(f"  {heuristic.name:<12} is {gap:5.2f}x the optimum")
    print()


def monte_carlo_comparison() -> None:
    """A miniature Figure 1 (mean completion time vs number of clusters)."""
    config = SimulationStudyConfig(cluster_counts=(2, 4, 6, 8, 10), iterations=150)
    result = run_simulation_study(config)
    series = {name: result.series(name) for name in result.heuristic_names}
    print(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=f"Mean completion time (s) of a 1 MB broadcast ({config.iterations} random grids per point)",
        )
    )


def main() -> None:
    practical_comparison()
    optimal_on_truncated_grid()
    monte_carlo_comparison()


if __name__ == "__main__":
    main()
