#!/usr/bin/env python3
"""Quickstart — schedule and simulate one grid broadcast in ~30 lines.

The example builds the paper's 88-machine GRID5000 topology (Table 3),
schedules a 1 MB broadcast with the grid-aware ECEF-LAT heuristic, prints the
resulting inter-cluster schedule and then *executes* it node by node on the
discrete-event simulator to compare the predicted and the "measured" time.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import build_grid5000_topology, get_heuristic
from repro.mpi.communicator import GridCommunicator

MESSAGE_SIZE = 1_048_576  # 1 MiB, the size used throughout the paper's §6


def main() -> None:
    # 1. The grid: six logical clusters, 88 machines, Table 3 latencies.
    grid = build_grid5000_topology()
    print(f"grid: {grid.name} — {grid.num_clusters} clusters, {grid.num_nodes} machines")
    for cluster in grid.clusters:
        print(
            f"  cluster {cluster.cluster_id} ({cluster.name:10s}): {cluster.size:2d} machines, "
            f"local 1 MB broadcast ≈ {cluster.broadcast_time(MESSAGE_SIZE) * 1e3:6.2f} ms"
        )

    # 2. Schedule the inter-cluster phase with the paper's ECEF-LAT heuristic.
    heuristic = get_heuristic("ecef_lat_max")
    schedule = heuristic.schedule(grid, MESSAGE_SIZE, root=0)
    print()
    print(schedule.summary())

    # 3. Execute the same broadcast on the simulator (the testbed stand-in).
    comm = GridCommunicator(grid)
    outcome = comm.bcast(MESSAGE_SIZE, heuristic=heuristic, root_cluster=0)
    print()
    print(f"predicted completion time : {outcome.predicted_time * 1e3:8.2f} ms")
    print(f"simulated completion time : {outcome.measured_time * 1e3:8.2f} ms")
    print(f"messages exchanged        : {len(outcome.execution.trace)}")

    # 4. Compare against the grid-unaware binomial tree ("Default LAM").
    naive = comm.bcast_binomial(MESSAGE_SIZE)
    print(f"grid-unaware binomial     : {naive.measured_time * 1e3:8.2f} ms")

    # 5. Visualise the schedule as an ASCII Gantt chart.
    from repro.analysis import render_schedule_gantt

    print()
    print(render_schedule_gantt(schedule, labels=[c.name for c in grid.clusters]))


if __name__ == "__main__":
    main()
