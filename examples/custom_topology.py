#!/usr/bin/env python3
"""Build a custom grid from your own measurements and tune every layer.

This example shows the full modelling workflow a user of the library would
follow for their own infrastructure:

1. start from a node-to-node latency matrix (here: three sites synthesised
   with jitter),
2. identify logical homogeneous clusters with the Lowekamp-style algorithm,
3. measure pLogP parameters of a wide-area path on the simulator,
4. pick the best intra-cluster broadcast tree per cluster ("fast tuning"),
5. assemble a :class:`~repro.topology.grid.Grid` and compare schedules,
   including a custom user-defined heuristic registered at runtime.

Run with::

    python examples/custom_topology.py
"""

from __future__ import annotations

import numpy as np

from repro.collectives.selector import select_best_tree
from repro.core.base import SchedulingHeuristic, SchedulingState
from repro.core.registry import PAPER_HEURISTICS, get_heuristic, register_heuristic
from repro.model.measurement import MeasurementProcedure
from repro.model.plogp import GapFunction, PLogPParameters
from repro.simulator.network import SimulatedNetwork
from repro.topology.cluster import Cluster
from repro.topology.clustering import identify_logical_clusters
from repro.topology.grid import Grid, InterClusterLink
from repro.topology.links import classify_latency, default_link_parameters

MESSAGE_SIZE = 2 * 1_048_576


def synthesise_measurements() -> np.ndarray:
    """A fake measurement campaign over 3 sites (24 + 16 + 8 machines)."""
    rng = np.random.default_rng(7)
    sizes = (24, 16, 8)
    base_intra = (55e-6, 70e-6, 40e-6)
    base_inter = np.array(
        [
            [0.0, 8e-3, 14e-3],
            [8e-3, 0.0, 11e-3],
            [14e-3, 11e-3, 0.0],
        ]
    )
    total = sum(sizes)
    site_of = np.repeat(np.arange(3), sizes)
    matrix = np.empty((total, total))
    for a in range(total):
        for b in range(total):
            if a == b:
                matrix[a, b] = 0.0
            elif site_of[a] == site_of[b]:
                matrix[a, b] = base_intra[site_of[a]]
            else:
                matrix[a, b] = base_inter[site_of[a], site_of[b]]
    jitter = np.clip(rng.normal(1.0, 0.05, matrix.shape), 0.8, 1.2)
    matrix = matrix * jitter
    return (matrix + matrix.T) / 2.0


def build_grid_from_matrix(matrix: np.ndarray) -> Grid:
    """Identify clusters, derive per-cluster and per-link pLogP parameters."""
    logical = identify_logical_clusters(matrix, tolerance=0.30)
    print("identified logical clusters:", [cluster.size for cluster in logical])

    clusters: list[Cluster] = []
    for index, logical_cluster in enumerate(logical):
        latency = max(logical_cluster.reference_latency, 20e-6)
        level = classify_latency(latency)
        defaults = default_link_parameters(level)
        params = PLogPParameters(
            latency=latency,
            gap=GapFunction.from_bandwidth(overhead=defaults.overhead, bandwidth=defaults.bandwidth),
            num_procs=logical_cluster.size,
        )
        tuned = select_best_tree(params, MESSAGE_SIZE)
        print(
            f"  cluster {index}: {logical_cluster.size:2d} machines -> best local tree "
            f"'{tuned.tree.name}' ({tuned.predicted_time * 1e3:.2f} ms predicted)"
        )
        clusters.append(
            Cluster(
                cluster_id=index,
                name=f"site{index}",
                size=logical_cluster.size,
                intra_params=params,
                broadcast_algorithm=tuned.tree.name,
            )
        )

    links: dict[tuple[int, int], InterClusterLink] = {}
    for i in range(len(logical)):
        for j in range(i + 1, len(logical)):
            pair_latencies = [
                matrix[a, b] for a in logical[i].members for b in logical[j].members
            ]
            latency = float(np.median(pair_latencies))
            level = classify_latency(latency)
            defaults = default_link_parameters(level)
            links[(i, j)] = InterClusterLink(
                latency=latency,
                gap=GapFunction.from_bandwidth(
                    overhead=defaults.overhead, bandwidth=defaults.bandwidth
                ),
            )
    return Grid(clusters, links, name="custom-3-sites")


class CheapestRelayFirst(SchedulingHeuristic):
    """A user-defined heuristic: always relay through the latest receiver.

    Not a good strategy — it builds a chain — but it demonstrates how little
    code a custom policy needs: implement ``build_order`` and register it.
    """

    key = "cheapest_relay_first"
    display_name = "ChainRelay"

    def build_order(self, state: SchedulingState) -> None:
        current = state.root
        while not state.done:
            target = min(
                state.pending, key=lambda candidate: state.transfer_time(current, candidate)
            )
            state.commit(current, target)
            current = target


def measure_wide_area_path(grid: Grid) -> None:
    """Run the simulated pLogP measurement procedure over one WAN path."""
    network = SimulatedNetwork(grid)
    oracle = network.round_trip_oracle(grid.coordinator_rank(0), grid.coordinator_rank(1))
    measured = MeasurementProcedure(oracle).run()
    print(
        f"measured pLogP parameters of the site0-site1 path: "
        f"L = {measured.latency * 1e3:.2f} ms, g(1MB) = {measured.gap(1_048_576) * 1e3:.2f} ms"
    )
    print()


def main() -> None:
    matrix = synthesise_measurements()
    grid = build_grid_from_matrix(matrix)
    print()
    measure_wide_area_path(grid)

    register_heuristic(CheapestRelayFirst.key, CheapestRelayFirst, overwrite=True)
    print(f"== scheduling a {MESSAGE_SIZE // 1_048_576} MiB broadcast on {grid.name} ==")
    for key in (*PAPER_HEURISTICS, CheapestRelayFirst.key):
        heuristic = get_heuristic(key)
        schedule = heuristic.schedule(grid, MESSAGE_SIZE, root=0)
        print(f"  {heuristic.name:<12} makespan {schedule.makespan * 1e3:8.2f} ms")


if __name__ == "__main__":
    main()
