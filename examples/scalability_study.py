#!/usr/bin/env python3
"""Scalability study — how the heuristics behave as grids grow to 50 clusters.

The paper's motivation is that grids will soon interconnect "tenths of
clusters".  This example sweeps the cluster count from 5 to 50 (a miniature
Figure 2 + Figure 4), then demonstrates the *mixed strategy* recommended at
the end of the paper's §6: use a performance-oriented heuristic below a
cluster-count threshold and ECEF-LAT above it.

Run with::

    python examples/scalability_study.py           # quick (default 80 iterations)
    REPRO_ITERATIONS=1000 python examples/scalability_study.py
"""

from __future__ import annotations

import os

from repro.core.mixed import MixedStrategy
from repro.core.registry import register_heuristic
from repro.experiments.config import SimulationStudyConfig
from repro.experiments.hit_rate import hit_rate_from_study
from repro.experiments.report import render_hit_rate_table, render_series_table
from repro.experiments.simulation_study import run_simulation_study

ITERATIONS = int(os.environ.get("REPRO_ITERATIONS", "80"))
CLUSTER_COUNTS = (5, 10, 20, 30, 40, 50)


def completion_time_sweep() -> None:
    """Mean completion time for all heuristics plus the mixed strategy."""
    register_heuristic("example_mixed", lambda: MixedStrategy(threshold=10), overwrite=True)
    config = SimulationStudyConfig(
        cluster_counts=CLUSTER_COUNTS,
        iterations=ITERATIONS,
        heuristics=(
            "flat_tree",
            "fef",
            "ecef",
            "ecef_la",
            "ecef_lat_max",
            "bottom_up",
            "example_mixed",
        ),
    )
    result = run_simulation_study(config)
    series = {name: result.series(name) for name in result.heuristic_names}
    print(
        render_series_table(
            "clusters",
            result.cluster_counts,
            series,
            title=f"Mean completion time (s), 1 MB broadcast, {ITERATIONS} iterations",
        )
    )
    print()

    flat = result.series("Flat Tree")
    ecef = result.series("ECEF")
    print(
        "observations: the Flat Tree needs "
        f"{flat[-1] / ecef[-1]:.1f}x the time of ECEF at 50 clusters, "
        f"while ECEF itself only grew by {100 * (ecef[-1] / ecef[0] - 1):.0f}% "
        "between 5 and 50 clusters."
    )
    print()


def hit_rate_sweep() -> None:
    """The Figure 4 methodology: who matches the per-iteration global minimum."""
    config = SimulationStudyConfig(
        cluster_counts=CLUSTER_COUNTS,
        iterations=ITERATIONS,
        heuristics=("ecef", "ecef_la", "ecef_lat_max", "ecef_lat_min"),
    )
    result = hit_rate_from_study(run_simulation_study(config))
    counts = {name: result.series(name) for name in result.heuristic_names}
    print(
        render_hit_rate_table(
            result.cluster_counts,
            counts,
            iterations=result.iterations,
            title="Hit rate of the ECEF-like heuristics",
        )
    )
    print()
    for name in result.heuristic_names:
        slope = result.trend_slope(name)
        direction = "degrades" if slope < -1e-3 else "holds steady"
        print(f"  {name:<10} hit rate {direction} with the cluster count (slope {slope:+.4f}/cluster)")


def main() -> None:
    completion_time_sweep()
    hit_rate_sweep()


if __name__ == "__main__":
    main()
