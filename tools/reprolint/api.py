"""API-hygiene rules: study drivers expose one consistent execution surface.

Every public study driver (``run_*`` / ``execute_*``) resolves its worker
count, executor lane and host list from the same environment variables
(``REPRO_*``), and each grew up in a different PR — which is exactly how
surfaces drift.  Two rules pin the convention:

* ``api-executor-param`` — a public module-level driver that accepts
  ``workers=`` must also accept ``executor=`` and ``pool=``, so every
  driver can be pointed at any lane (inline/thread/process/remote) and can
  reuse a shared pool;
* ``api-env-doc`` — the driver's docstring must name the environment
  variables its parameters fall back to: a ``workers`` parameter implies a
  ``REPRO_*WORKERS`` mention, ``executor`` implies ``REPRO_EXECUTOR``, and
  a driver taking both ``executor`` and ``pool`` can be routed to the
  remote lane, so it must mention ``REPRO_HOSTS``.

Both rules apply only under :attr:`reprolint.engine.Config.api_paths` and
only to public (non-underscore) module-level functions.
"""

from __future__ import annotations

import ast
import re
from typing import Iterable

from reprolint.engine import Config, Rule, SourceModule, Violation, register

_DRIVER_RE = re.compile(r"^(run|execute)_[a-z0-9_]+$")
_WORKERS_ENV_RE = re.compile(r"REPRO_\w*WORKERS")


def _param_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    args = func.args
    names = {arg.arg for arg in args.args}
    names.update(arg.arg for arg in args.posonlyargs)
    names.update(arg.arg for arg in args.kwonlyargs)
    return names


def _public_drivers(
    module: SourceModule,
) -> Iterable[ast.FunctionDef | ast.AsyncFunctionDef]:
    for node in module.tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and _DRIVER_RE.match(node.name)
        ):
            yield node


@register
class ExecutorParamRule(Rule):
    id = "api-executor-param"
    family = "api"
    summary = "a worker-parallel driver is missing executor=/pool= params"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not module.in_scope(config.api_paths):
            return
        for func in _public_drivers(module):
            params = _param_names(func)
            if "workers" not in params:
                continue
            missing = sorted({"executor", "pool"} - params)
            if missing:
                yield self.violation(
                    module,
                    func,
                    f"public driver {func.name}() accepts workers= but not "
                    f"{', '.join(f'{name}=' for name in missing)}; every "
                    "worker-parallel driver must expose the full lane "
                    "surface",
                )


@register
class EnvDocRule(Rule):
    id = "api-env-doc"
    family = "api"
    summary = "a driver docstring omits the env vars its params fall back to"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not module.in_scope(config.api_paths):
            return
        for func in _public_drivers(module):
            params = _param_names(func)
            requirements: list[tuple[str, re.Pattern[str]]] = []
            if "workers" in params:
                requirements.append(("REPRO_*WORKERS", _WORKERS_ENV_RE))
            if "executor" in params:
                requirements.append(
                    ("REPRO_EXECUTOR", re.compile(r"REPRO_EXECUTOR"))
                )
            if "executor" in params and "pool" in params:
                requirements.append(("REPRO_HOSTS", re.compile(r"REPRO_HOSTS")))
            if not requirements:
                continue
            docstring = ast.get_docstring(func) or ""
            for label, pattern in requirements:
                if not pattern.search(docstring):
                    yield self.violation(
                        module,
                        func,
                        f"public driver {func.name}() does not document its "
                        f"{label} fallback in the docstring",
                    )
