"""Lock-discipline rule: ``# guarded-by:`` annotated state stays under its lock.

``runtime/remote.py`` is a multi-threaded coordinator: the dispatcher, the
result-collector threads and the heartbeat monitor all touch the same job
table and agent roster.  The convention enforced here makes the locking
protocol explicit and machine-checkable:

* where a field is *declared* (its ``__init__`` assignment, or a
  module-level assignment), a trailing ``# guarded-by: <lock>`` comment
  names the lock that protects it;
* every other read or write of that field must sit lexically inside a
  ``with <...>.<lock>:`` block whose lock name matches the annotation's
  last path component (``self._lock`` and ``pool._lock`` both match a
  ``guarded-by: _lock`` declaration — the object graph is the reviewers'
  job, the lexical discipline is ours);
* a helper that is *always called with the lock already held* carries a
  ``# holds: <lock>`` marker on its ``def`` line, which blesses every
  access in its body.

``__init__`` bodies are exempt (no other thread can see the object during
construction), as is the declaration line itself.  The checker is
flow-insensitive and matches attribute accesses by name anywhere in the
file, so an unrelated attribute that happens to share a guarded name needs
a ``# reprolint: disable=lock-guarded-by`` suppression — in practice the
runtime's field names are unique enough that none is needed.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.engine import (
    GUARDED_BY_RE,
    HOLDS_RE,
    Config,
    Rule,
    SourceModule,
    Violation,
    dotted_name,
    register,
)


def _lock_tail(spec: str) -> str:
    """``self._lock`` / ``pool._lock`` / ``_lock`` → ``_lock``."""
    return spec.split(".")[-1]


def _declared_guards(module: SourceModule) -> dict[str, str]:
    """``field name -> lock tail`` from ``# guarded-by:`` annotations.

    Attribute declarations contribute the attribute name; module-level
    declarations contribute the variable name.
    """
    guards: dict[str, str] = {}
    for node in ast.walk(module.tree):
        if not isinstance(node, (ast.Assign, ast.AnnAssign)):
            continue
        match = module.segment_has(node, GUARDED_BY_RE)
        if not match:
            continue
        lock = _lock_tail(match.group(1))
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            if isinstance(target, ast.Attribute):
                guards[target.attr] = lock
            elif isinstance(target, ast.Name):
                guards[target.id] = lock
    return guards


def _holds_marker(
    func: ast.FunctionDef | ast.AsyncFunctionDef, module: SourceModule
) -> str | None:
    """The lock tail from a ``# holds:`` marker in the function signature."""
    last = func.body[0].lineno if func.body else func.lineno
    for lineno in range(func.lineno, last):
        if lineno - 1 >= len(module.lines):
            break
        match = HOLDS_RE.search(module.lines[lineno - 1])
        if match:
            return _lock_tail(match.group(1))
    # Trailing marker on a one-line signature sharing the first body line.
    match = HOLDS_RE.search(module.lines[func.lineno - 1])
    return _lock_tail(match.group(1)) if match else None


def _with_locks(node: ast.AST, module: SourceModule) -> set[str]:
    """Lock tails of every ``with`` statement enclosing ``node``."""
    held: set[str] = set()
    for ancestor in module.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                name = dotted_name(item.context_expr)
                if name is not None:
                    held.add(_lock_tail(name))
    return held


@register
class GuardedByRule(Rule):
    id = "lock-guarded-by"
    family = "lock"
    summary = "a guarded-by annotated field is touched outside its lock"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        guards = _declared_guards(module)
        if not guards:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr in guards:
                field, lock = node.attr, guards[node.attr]
            elif isinstance(node, ast.Name) and node.id in guards:
                field, lock = node.id, guards[node.id]
            else:
                continue
            if module.segment_has(node, GUARDED_BY_RE):
                continue  # the declaration itself
            func = module.enclosing_function(node)
            if func is None:
                continue  # module-level declaration/initialisation
            if func.name == "__init__":
                continue  # construction happens-before any sharing
            if _holds_marker(func, module) == lock:
                continue
            if lock in _with_locks(node, module):
                continue
            yield self.violation(
                module,
                node,
                f"{field!r} is declared guarded-by {lock!r} but is accessed "
                f"outside any 'with ...{lock}:' block (annotate the function "
                f"'# holds: {lock}' if the caller holds it)",
            )
