"""reprolint — repository-specific static analysis for the repro codebase.

Checks the invariants the reproduction's methodology depends on but tests
can only sample: seeded randomness in the deterministic layers, paired
acquisition/release of shared-memory segments and sockets, lock-guarded
field access in the remote coordinator, and a consistent public driver
surface.  See ``docs/static_analysis.md`` for the rule catalogue.

Usage::

    python -m reprolint src/ tests/           # lint, exit 1 on findings
    python -m reprolint --list-rules          # rule catalogue
    python -m reprolint --format json src/    # machine-readable report
"""

from reprolint.engine import (
    Config,
    Rule,
    SourceModule,
    Violation,
    iter_rules,
    lint_paths,
    lint_source,
    register,
)

__version__ = "1.0.0"

__all__ = [
    "Config",
    "Rule",
    "SourceModule",
    "Violation",
    "iter_rules",
    "lint_paths",
    "lint_source",
    "register",
    "__version__",
]
