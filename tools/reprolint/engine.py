"""The reprolint engine: source loading, rule registry, suppressions, driving.

reprolint is a repository-specific static-analysis pass: it mechanically
enforces the invariants this reproduction's methodology rests on — every
random draw flows from a derived seed, every shared resource is released on
all paths, every lock-guarded field is touched under its lock, every study
driver exposes the same execution surface.  The tier-1 tests *sample* those
invariants; this pass checks them on every file in milliseconds, before any
test runs.

The engine is deliberately small and stdlib-only (:mod:`ast`, :mod:`re`):

* :class:`SourceModule` parses one file and pre-computes what every rule
  needs — the AST, a child-to-parent map, and the per-line suppression table
  built from ``# reprolint: disable=<rule>[,<rule>]`` comments;
* :class:`Rule` subclasses register themselves via :func:`register` and
  yield :class:`Violation` records from their :meth:`Rule.check`;
* :func:`lint_paths` walks files, applies every (selected) rule and filters
  suppressed findings.

Rules never execute the code under analysis; everything is syntactic, which
is what makes the pass safe to run on any tree, broken or not (files that do
not parse are reported under the ``parse-error`` pseudo-rule).
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, Sequence

#: Comment syntax silencing one finding: ``# reprolint: disable=<rule>`` (a
#: comma-separated rule list, or ``all``).  A trailing comment applies to its
#: own line; a comment alone on a line applies to the next line.
SUPPRESS_RE = re.compile(r"#\s*reprolint:\s*disable=([A-Za-z0-9_\-, ]+)")

#: Marker declaring that a whole function runs with a lock held by its
#: caller (``# holds: <lock>``) — see :mod:`reprolint.locks`.
HOLDS_RE = re.compile(r"#\s*holds:\s*([A-Za-z0-9_.]+)")

#: Attribute annotation naming the lock that guards a field
#: (``# guarded-by: <lock>``) — see :mod:`reprolint.locks`.
GUARDED_BY_RE = re.compile(r"#\s*guarded-by:\s*([A-Za-z0-9_.]+)")


@dataclass(frozen=True)
class Violation:
    """One finding: a rule, a location and a human-readable message."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly representation (the ``--format json`` row)."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
        }

    def render(self) -> str:
        """The ``--format text`` row (``path:line:col: rule message``)."""
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


@dataclass(frozen=True)
class Config:
    """Knobs scoping path-sensitive rule families.

    The determinism and API-hygiene families only make sense on the library
    paths they describe; the resource and lock families are annotation- or
    pattern-driven and safe everywhere, so they take no scope.  An empty
    string in a path tuple matches every file (used by the fixture tests to
    point the scoped families at temporary files).
    """

    #: Path fragments (posix) under which the determinism family applies.
    determinism_paths: tuple[str, ...] = (
        "repro/core",
        "repro/simulator",
        "repro/experiments",
        "repro/gossip",
    )
    #: Path fragments under which the API-hygiene family applies.
    api_paths: tuple[str, ...] = ("repro/",)


class SourceModule:
    """One parsed file plus the lookups every rule shares."""

    def __init__(self, path: Path, source: str, display_path: str | None = None):
        self.path = path
        self.display_path = display_path if display_path is not None else str(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.suppressions = self._parse_suppressions()

    # -- structure helpers ---------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        """The syntactic parent of ``node`` (``None`` for the module)."""
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        """Walk from ``node``'s parent up to the module node."""
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        """The innermost function/method containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def enclosing_class(self, node: ast.AST) -> ast.ClassDef | None:
        """The innermost class containing ``node``."""
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
        return None

    def in_scope(self, fragments: Sequence[str]) -> bool:
        """Whether this file falls under any of the path ``fragments``."""
        posix = self.path.as_posix()
        return any(fragment in posix for fragment in fragments)

    def segment_has(self, node: ast.AST, pattern: re.Pattern) -> re.Match | None:
        """Search ``pattern`` in the source lines spanned by ``node``."""
        end = getattr(node, "end_lineno", node.lineno)
        for lineno in range(node.lineno, end + 1):
            match = pattern.search(self.lines[lineno - 1])
            if match:
                return match
        return None

    # -- suppressions --------------------------------------------------------------

    def _parse_suppressions(self) -> dict[int, frozenset[str]]:
        table: dict[int, set[str]] = {}
        for number, line in enumerate(self.lines, start=1):
            match = SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = frozenset(
                part.strip() for part in match.group(1).split(",") if part.strip()
            )
            # A comment alone on its line silences the next line; a trailing
            # comment silences its own.
            target = number + 1 if line.lstrip().startswith("#") else number
            table.setdefault(target, set()).update(rules)
        return {line: frozenset(rules) for line, rules in table.items()}

    def suppressed(self, rule: str, line: int) -> bool:
        """Whether ``rule`` findings on ``line`` are silenced."""
        rules = self.suppressions.get(line, frozenset())
        return rule in rules or "all" in rules


class Rule:
    """Base class of every check.  Subclasses set the class attributes and
    implement :meth:`check`; :func:`register` adds them to the registry."""

    #: Unique rule identifier (used in reports and suppression comments).
    id: str = ""
    #: Rule family (``determinism``, ``resource``, ``lock``, ``api``).
    family: str = ""
    #: One-line description shown by ``--list-rules``.
    summary: str = ""

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        raise NotImplementedError

    def violation(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Violation:
        """Build a :class:`Violation` anchored at ``node``."""
        return Violation(
            rule=self.id,
            path=module.display_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
        )


_REGISTRY: dict[str, Rule] = {}


def register(rule_class: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not rule_class.id:
        raise ValueError(f"{rule_class.__name__} has no rule id")
    if rule_class.id in _REGISTRY:
        raise ValueError(f"duplicate rule id {rule_class.id!r}")
    _REGISTRY[rule_class.id] = rule_class()
    return rule_class


def iter_rules() -> list[Rule]:
    """Every registered rule, sorted by id (importing the rule modules)."""
    _load_rule_modules()
    return [_REGISTRY[rule_id] for rule_id in sorted(_REGISTRY)]


def _load_rule_modules() -> None:
    # Imported lazily so engine.py itself stays importable from the rule
    # modules without a cycle.
    from reprolint import api, determinism, locks, resources  # noqa: F401


# -- name resolution helpers shared by the rule modules ----------------------------


def dotted_name(node: ast.AST) -> str | None:
    """``a.b.c`` for a Name/Attribute chain, ``None`` for anything else."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree: ast.Module, module_name: str) -> set[str]:
    """Local names bound to ``module_name`` by import statements."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module_name:
                    aliases.add(alias.asname or alias.name.split(".")[0])
    return aliases


def from_imports(tree: ast.Module, module_name: str) -> dict[str, str]:
    """``local name -> original name`` for ``from module_name import ...``."""
    bound: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module == module_name:
            for alias in node.names:
                bound[alias.asname or alias.name] = alias.name
    return bound


# -- driving -----------------------------------------------------------------------


def iter_python_files(paths: Sequence[str | Path]) -> Iterator[Path]:
    """Every ``.py`` file under ``paths`` (files pass through directly)."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            if path.suffix == ".py":
                yield path
            continue
        for found in sorted(path.rglob("*.py")):
            if any(
                part.startswith(".") or part == "__pycache__"
                for part in found.parts
            ):
                continue
            yield found


def lint_source(
    source: str,
    *,
    path: str = "<string>",
    config: Config | None = None,
    select: Sequence[str] | None = None,
) -> list[Violation]:
    """Lint one source string (the fixture-test entry point)."""
    config = config if config is not None else Config()
    try:
        module = SourceModule(Path(path), source, display_path=path)
    except SyntaxError as exc:
        return [
            Violation(
                rule="parse-error",
                path=path,
                line=exc.lineno or 1,
                col=(exc.offset or 0) + 1,
                message=f"file does not parse: {exc.msg}",
            )
        ]
    violations: list[Violation] = []
    for rule in iter_rules():
        if select is not None and rule.id not in select:
            continue
        for violation in rule.check(module, config):
            if not module.suppressed(violation.rule, violation.line):
                violations.append(violation)
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def lint_paths(
    paths: Sequence[str | Path],
    *,
    config: Config | None = None,
    select: Sequence[str] | None = None,
) -> tuple[list[Violation], int]:
    """Lint every Python file under ``paths``.

    Returns ``(violations, files_checked)``; a file that does not parse
    contributes a single ``parse-error`` finding.
    """
    violations: list[Violation] = []
    checked = 0
    for path in iter_python_files(paths):
        checked += 1
        source = path.read_text(encoding="utf-8")
        violations.extend(
            lint_source(
                source, path=path.as_posix(), config=config, select=select
            )
        )
    return violations, checked
