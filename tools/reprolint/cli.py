"""Command-line front end: ``python -m reprolint src/ tests/``.

Exit status is 0 when no violations are found, 1 when any are, 2 on usage
errors — so the CI job (and a pre-commit hook) can gate on it directly.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Sequence

from reprolint.engine import Config, iter_rules, lint_paths


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description=(
            "AST-based invariant checker for the repro codebase: "
            "determinism, resource lifecycle, lock discipline and API "
            "hygiene."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (e.g. src/ tests/)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        default=None,
        metavar="RULES",
        help="comma-separated rule ids to run (default: all rules)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every registered rule and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    options = parser.parse_args(argv)

    if options.list_rules:
        for rule in iter_rules():
            print(f"{rule.id:28} [{rule.family}] {rule.summary}")
        return 0

    if not options.paths:
        parser.error("no paths given (try: python -m reprolint src/ tests/)")

    select: list[str] | None = None
    if options.select:
        select = [
            part.strip()
            for chunk in options.select
            for part in chunk.split(",")
            if part.strip()
        ]
        known = {rule.id for rule in iter_rules()} | {"parse-error"}
        unknown = sorted(set(select) - known)
        if unknown:
            parser.error(f"unknown rule id(s): {', '.join(unknown)}")

    violations, files_checked = lint_paths(
        options.paths, config=Config(), select=select
    )

    if options.format == "json":
        print(
            json.dumps(
                {
                    "files_checked": files_checked,
                    "violations": [v.as_dict() for v in violations],
                },
                indent=2,
            )
        )
    else:
        for violation in violations:
            print(violation.render())
        summary = (
            f"reprolint: {len(violations)} violation"
            f"{'' if len(violations) == 1 else 's'} "
            f"in {files_checked} file{'' if files_checked == 1 else 's'}"
        )
        print(summary, file=sys.stderr)

    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
