"""Determinism rules: every random draw must flow from a derived seed.

The reproduction's central contract — asserted end-to-end by the runtime
test suite — is that every execution lane produces bit-identical results.
That only holds while no code in the scheduling kernel, the simulator or the
study drivers draws from an unseeded or global random source, reads the wall
clock into results, or lets hash-order leak into anything ordering-sensitive.
These rules flag the syntactic forms through which such nondeterminism
enters:

* ``determinism-random`` — any use of the stdlib :mod:`random` module;
* ``determinism-np-random`` — the legacy ``np.random.<fn>()`` global
  generator (``default_rng``/``SeedSequence``/``Generator`` are the seeded
  constructors and stay allowed);
* ``determinism-unseeded-rng`` — ``default_rng()`` with no seed argument;
* ``determinism-wallclock`` — ``time.time()``/``time.time_ns()``,
  ``os.urandom()`` and ``uuid.uuid4()`` (``time.monotonic``/``perf_counter``
  are measurement clocks and stay allowed — they feed cost models, never
  results);
* ``determinism-set-order`` — iterating a ``set`` into an ordered consumer
  without ``sorted()``: set iteration order depends on ``PYTHONHASHSEED``
  for string elements, so feeding it to a list, a loop, a schedule order or
  seed derivation makes results run-dependent.  (``dict`` iteration is
  insertion-ordered on every supported Python and is *not* flagged, except
  ``.keys()`` fed straight into ``derive_seed``, where key order becomes the
  seed.)
* ``determinism-id-comparison`` — ordering or equating objects by ``id()``:
  CPython addresses change run to run, so any ``id``-keyed sort or
  comparison is hash-order nondeterminism in disguise.  (Using ``id()`` as a
  *dictionary key* for identity maps is deterministic within a run and stays
  allowed.)

All five apply only under :attr:`reprolint.engine.Config.determinism_paths`
— the ordering-sensitive library layers.  Timing jitter in the runtime's
connect-retry backoff, for example, is deliberately random and lives outside
the scope.
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.engine import (
    Config,
    Rule,
    SourceModule,
    Violation,
    dotted_name,
    from_imports,
    import_aliases,
    register,
)

#: ``np.random`` attributes that are seeded constructors, not draws.
_SEEDED_CONSTRUCTORS = {"default_rng", "SeedSequence", "Generator", "BitGenerator"}

#: Wall-clock / OS-entropy calls (module, attribute).
_WALLCLOCK = {
    ("time", "time"),
    ("time", "time_ns"),
    ("os", "urandom"),
    ("uuid", "uuid4"),
    ("uuid", "uuid1"),
}

#: Callables that materialise an iteration order from their argument.
_ORDERING_CONSUMERS = {"list", "tuple", "enumerate"}


def _in_scope(module: SourceModule, config: Config) -> bool:
    return module.in_scope(config.determinism_paths)


@register
class RandomModuleRule(Rule):
    id = "determinism-random"
    family = "determinism"
    summary = "stdlib random draws bypass the seed-derivation contract"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not _in_scope(module, config):
            return
        aliases = import_aliases(module.tree, "random")
        named = from_imports(module.tree, "random")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                yield self.violation(
                    module,
                    node,
                    f"stdlib random.{func.attr}() is unseeded global state; "
                    "draw through RandomStream / derive_seed instead",
                )
            elif isinstance(func, ast.Name) and func.id in named:
                yield self.violation(
                    module,
                    node,
                    f"stdlib random.{named[func.id]}() is unseeded global "
                    "state; draw through RandomStream / derive_seed instead",
                )


@register
class NumpyGlobalRandomRule(Rule):
    id = "determinism-np-random"
    family = "determinism"
    summary = "np.random.<fn>() draws from the legacy global generator"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not _in_scope(module, config):
            return
        aliases = import_aliases(module.tree, "numpy")
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or "." not in name:
                continue
            base, *rest = name.split(".")
            if base in aliases and rest[:1] == ["random"] and len(rest) == 2:
                if rest[1] not in _SEEDED_CONSTRUCTORS:
                    yield self.violation(
                        module,
                        node,
                        f"{name}() draws from numpy's global generator; use "
                        "a seeded default_rng(...) / RandomStream instead",
                    )


@register
class UnseededRngRule(Rule):
    id = "determinism-unseeded-rng"
    family = "determinism"
    summary = "default_rng() without a seed gives OS-entropy streams"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not _in_scope(module, config):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None or name.split(".")[-1] != "default_rng":
                continue
            unseeded = not node.args and not node.keywords
            if not unseeded and node.args:
                first = node.args[0]
                unseeded = isinstance(first, ast.Constant) and first.value is None
            if unseeded:
                yield self.violation(
                    module,
                    node,
                    "default_rng() with no seed draws OS entropy; every "
                    "generator must derive from an explicit seed",
                )


@register
class WallClockRule(Rule):
    id = "determinism-wallclock"
    family = "determinism"
    summary = "wall-clock / OS-entropy reads in a deterministic path"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not _in_scope(module, config):
            return
        sources: set[str] = set()
        for mod, attr in _WALLCLOCK:
            for alias in import_aliases(module.tree, mod):
                sources.add(f"{alias}.{attr}")
            named = from_imports(module.tree, mod)
            for local, original in named.items():
                if original == attr:
                    sources.add(local)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name in sources:
                yield self.violation(
                    module,
                    node,
                    f"{name}() reads wall-clock/OS entropy; results must "
                    "depend only on seeds and inputs (time.monotonic / "
                    "perf_counter are fine for cost models)",
                )


def _is_setlike(node: ast.AST, local_sets: set[str]) -> bool:
    """Whether ``node`` syntactically denotes a set."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        name = dotted_name(node.func)
        if name in {"set", "frozenset"}:
            return True
    if isinstance(node, ast.Name) and node.id in local_sets:
        return True
    return False


@register
class SetOrderRule(Rule):
    id = "determinism-set-order"
    family = "determinism"
    summary = "set iteration order feeds an ordering-sensitive consumer"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not _in_scope(module, config):
            return
        # Names assigned from a set-like expression (flow-insensitive: one
        # assignment anywhere marks the name — conservative but cheap).
        local_sets: set[str] = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign) and _is_setlike(node.value, set()):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        local_sets.add(target.id)
        for node in ast.walk(module.tree):
            site: ast.AST | None = None
            message = ""
            if isinstance(node, ast.For) and _is_setlike(node.iter, local_sets):
                site, message = node.iter, "a for loop iterates a set directly"
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp, ast.DictComp)):
                for generator in node.generators:
                    if _is_setlike(generator.iter, local_sets):
                        site = generator.iter
                        message = "a comprehension iterates a set directly"
                        break
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if (
                    name in _ORDERING_CONSUMERS
                    and node.args
                    and _is_setlike(node.args[0], local_sets)
                ):
                    # list(set(...)) wrapped in sorted(...) is the sanctioned
                    # normalisation — check the consumer's consumer.
                    parent = module.parent(node)
                    if not (
                        isinstance(parent, ast.Call)
                        and dotted_name(parent.func) == "sorted"
                    ):
                        site = node.args[0]
                        message = f"{name}() materialises a set's hash order"
                elif name is not None and name.split(".")[-1] == "derive_seed":
                    for arg in node.args:
                        if isinstance(arg, ast.Starred):
                            arg = arg.value
                        if _is_setlike(arg, local_sets) or (
                            isinstance(arg, ast.Call)
                            and isinstance(arg.func, ast.Attribute)
                            and arg.func.attr == "keys"
                        ):
                            site = arg
                            message = (
                                "derive_seed() must not be keyed by "
                                "set/dict-keys iteration order"
                            )
                            break
            if site is None:
                continue
            parent = module.parent(site)
            if isinstance(parent, ast.Call) and dotted_name(parent.func) == "sorted":
                continue
            yield self.violation(
                module,
                site,
                f"{message}; wrap it in sorted(...) so the order is "
                "value-defined, not hash-defined",
            )


@register
class IdComparisonRule(Rule):
    id = "determinism-id-comparison"
    family = "determinism"
    summary = "comparisons or sort keys built from id() are address order"

    def _is_id_call(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "id"
        )

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        if not _in_scope(module, config):
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Compare):
                operands = [node.left, *node.comparators]
                ordering = any(
                    isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE))
                    for op in node.ops
                )
                if any(self._is_id_call(operand) for operand in operands) and (
                    ordering
                    or sum(self._is_id_call(o) for o in operands) > 1
                ):
                    yield self.violation(
                        module,
                        node,
                        "comparing id() values orders objects by memory "
                        "address, which changes run to run",
                    )
            elif isinstance(node, ast.Call):
                name = dotted_name(node.func)
                tail = name.split(".")[-1] if name else ""
                if tail in {"sort", "sorted", "min", "max"}:
                    for keyword in node.keywords:
                        if keyword.arg == "key" and (
                            (
                                isinstance(keyword.value, ast.Name)
                                and keyword.value.id == "id"
                            )
                            or (
                                isinstance(keyword.value, ast.Lambda)
                                and self._is_id_call(keyword.value.body)
                            )
                        ):
                            yield self.violation(
                                module,
                                node,
                                f"{tail}(key=id) orders objects by memory "
                                "address, which changes run to run",
                            )
