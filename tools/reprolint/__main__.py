"""Entry point for ``python -m reprolint``."""

from reprolint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
