"""Resource-lifecycle rules: shipments, shared memory and sockets must close.

The runtime moves result arrays between processes through POSIX shared
memory (:class:`repro.runtime.transport.ArrayShipment`) and coordinates
remote agents over raw sockets.  A segment that is never ``unlink()``-ed
outlives the study in ``/dev/shm``; a socket left open on an error path
holds a worker slot until the OS reaps it.  Two rules keep every acquisition
paired with a release:

* ``resource-lifecycle`` — a function creates a shipment, a
  ``SharedMemory`` segment or a socket, binds it to a local name, never
  hands ownership elsewhere, and never releases it at all;
* ``resource-release-guard`` — the release exists but only on the happy
  path: it is not inside a ``finally`` block, an ``except`` handler or a
  ``with`` statement, so any exception between creation and release leaks
  the resource.

The analysis is deliberately ownership-based rather than path-sensitive.  A
name *escapes* when it is returned, yielded, stored into an attribute,
subscript or container literal, or passed as a call argument — at that point
some other code owns the release and the creating function is off the hook.
Only names whose lifetime is provably local to the function are checked,
which keeps false positives near zero at the cost of missing leaks that
escape before reaching their store (those are the reviewers' job; the rule
documents the convention).
"""

from __future__ import annotations

import ast
from typing import Iterable

from reprolint.engine import Config, Rule, SourceModule, Violation, dotted_name, register

#: Call-name tails that acquire a resource needing explicit release.
_CREATOR_TAILS = {"ArrayShipment", "SharedMemory", "create_connection"}

#: Method names that count as releasing the resource.
_RELEASE_ATTRS = {"close", "unlink", "shutdown", "release", "cleanup"}


def _is_creator(call: ast.Call) -> bool:
    name = dotted_name(call.func)
    if name is None:
        return False
    tail = name.split(".")[-1]
    if tail in _CREATOR_TAILS:
        return True
    # ``socket.socket(...)`` / ``socket(...)`` after ``from socket import socket``.
    if tail == "socket":
        return True
    # ``ArrayShipment.ship(...)`` — the classmethod constructor.
    if tail == "ship" and "ArrayShipment" in name:
        return True
    return False


def _function_creations(
    func: ast.FunctionDef | ast.AsyncFunctionDef,
) -> list[tuple[str, ast.Assign]]:
    """``(name, assignment)`` for local resource acquisitions in ``func``."""
    creations: list[tuple[str, ast.Assign]] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Call)
            and _is_creator(node.value)
        ):
            creations.append((node.targets[0].id, node))
    return creations


def _name_escapes(func: ast.AST, name: str, module: SourceModule) -> bool:
    """Whether ``name`` leaves the function's ownership."""
    for node in ast.walk(func):
        if not (isinstance(node, ast.Name) and node.id == name):
            continue
        parent = module.parent(node)
        if isinstance(parent, (ast.Return, ast.Yield, ast.YieldFrom)):
            return True
        if isinstance(parent, (ast.List, ast.Tuple, ast.Set, ast.Dict)):
            return True
        if isinstance(parent, ast.Assign) and node in parent.targets:
            continue
        if isinstance(parent, ast.Assign) and any(
            isinstance(target, (ast.Attribute, ast.Subscript))
            for target in parent.targets
        ):
            return True
        if isinstance(parent, ast.Call) and node in parent.args:
            return True
        if isinstance(parent, ast.keyword):
            return True
        if isinstance(parent, ast.Starred):
            return True
        if isinstance(parent, ast.withitem) and parent.context_expr is node:
            # ``with sock:`` / ``with closing(shm)`` — context manager owns it.
            return True
    return False


def _releases(func: ast.AST, name: str) -> list[ast.Call]:
    calls: list[ast.Call] = []
    for node in ast.walk(func):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _RELEASE_ATTRS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == name
        ):
            calls.append(node)
    return calls


def _release_is_guarded(release: ast.Call, module: SourceModule) -> bool:
    """Whether ``release`` runs even when an exception is in flight."""
    child: ast.AST = release
    for ancestor in module.ancestors(release):
        if isinstance(ancestor, ast.Try):
            if child in ancestor.finalbody:
                return True
        if isinstance(ancestor, ast.ExceptHandler):
            return True
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return False
        # Track which field of the ancestor we arrived through.
        child = ancestor
    return False


class _LifecycleBase(Rule):
    """Shared creation scan for the two lifecycle rules."""

    def _sites(
        self, module: SourceModule
    ) -> Iterable[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str, ast.Assign]]:
        for node in ast.walk(module.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            for name, assignment in _function_creations(node):
                if module.enclosing_function(assignment) is not node:
                    continue  # nested function owns it, handled when visited
                if _name_escapes(node, name, module):
                    continue
                yield node, name, assignment


@register
class ResourceLifecycleRule(_LifecycleBase):
    id = "resource-lifecycle"
    family = "resource"
    summary = "a locally-owned shipment/SharedMemory/socket is never released"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        for func, name, assignment in self._sites(module):
            if not _releases(func, name):
                yield self.violation(
                    module,
                    assignment,
                    f"{name!r} acquires a resource that is never closed/"
                    "unlinked in this function; release it in try/finally "
                    "or a with block",
                )


@register
class ResourceReleaseGuardRule(_LifecycleBase):
    id = "resource-release-guard"
    family = "resource"
    summary = "a resource release only runs on the exception-free path"

    def check(self, module: SourceModule, config: Config) -> Iterable[Violation]:
        for func, name, assignment in self._sites(module):
            releases = _releases(func, name)
            if not releases:
                continue  # resource-lifecycle already reports this
            if not any(
                _release_is_guarded(release, module) for release in releases
            ):
                yield self.violation(
                    module,
                    assignment,
                    f"{name!r} is only released on the happy path; an "
                    "exception before the close/unlink leaks it — move the "
                    "release into a finally block or a with statement",
                )
